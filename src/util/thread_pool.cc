#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace ldpids {

namespace {
// Set while a thread — pool worker or the calling thread — executes job
// tasks, so nested ParallelFor calls from inside a task degrade to inline
// loops instead of deadlocking on the pool's (non-recursive) job mutex.
thread_local bool t_inside_parallel_task = false;
}  // namespace

std::size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    throw std::invalid_argument("ThreadPool needs at least 1 thread");
  }
  workers_.reserve(num_threads - 1);
  for (std::size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::RunChunk(const std::function<void(std::size_t)>& fn,
                          std::size_t n) {
  while (true) {
    const std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    try {
      fn(i);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
      // Cancel the remaining indices; peers drain out on their next pull.
      cursor_.store(n, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::WorkerLoop() {
  t_inside_parallel_task = true;
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] {
      return stop_ || generation_ != seen_generation;
    });
    if (stop_) return;
    seen_generation = generation_;
    if (slots_ == 0) continue;  // job already fully staffed (or revoked)
    --slots_;
    ++active_;
    const std::function<void(std::size_t)>& fn = *job_fn_;
    const std::size_t n = job_n_;
    lock.unlock();
    RunChunk(fn, n);
    lock.lock();
    --active_;
    if (active_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(std::size_t n, std::size_t max_threads,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || max_threads <= 1 || workers_.empty() ||
      t_inside_parallel_task) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> call_lock(call_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = &fn;
    job_n_ = n;
    cursor_.store(0, std::memory_order_relaxed);
    // The calling thread takes one lane; workers may claim the rest.
    slots_ = std::min({max_threads - 1, workers_.size(), n - 1});
    error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller participates with the nested-call guard set: a task that
  // itself calls ParallelFor (from this thread) must run inline rather than
  // re-enter call_mu_, which this thread already holds. RunChunk never
  // throws (exceptions land in error_), so plain save/restore is safe.
  t_inside_parallel_task = true;
  RunChunk(fn, n);
  t_inside_parallel_task = false;
  std::unique_lock<std::mutex> lock(mu_);
  // Revoke unclaimed lanes so no late-waking worker can touch `fn` after
  // this call returns, then wait for the in-flight ones.
  slots_ = 0;
  done_cv_.wait(lock, [&] { return active_ == 0; });
  job_fn_ = nullptr;
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ParallelFor(std::size_t num_threads, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (num_threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Shared pool, sized generously so thread-count sweeps (1..8) exercise
  // real concurrency even on small machines; parked workers cost nothing.
  static ThreadPool pool(std::max<std::size_t>(HardwareThreads(), 8));
  pool.ParallelFor(n, num_threads, fn);
}

}  // namespace ldpids
