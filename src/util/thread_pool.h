// Deterministic thread-parallel evaluation primitive.
//
// The evaluation engine (analysis/runner.h) fans independent repetitions out
// across threads. Because every unit of work derives its randomness
// statelessly (HashCounter(seed, index)) and results are reduced in fixed
// index order, the output is bit-identical for every thread count — the
// pool only changes wall-clock time, never results.
//
// `ThreadPool` keeps a fixed set of parked worker threads and hands them
// index ranges through an atomic cursor (dynamic scheduling, so uneven task
// costs balance automatically). `ParallelFor` is the convenience entry point
// used across the library: it runs on a lazily-created process-wide pool and
// degrades to a plain inline loop when one thread is requested, the work has
// at most one item, or the calling thread is already executing a parallel
// task — whether as a pool worker or as a participating caller — so nested
// calls never deadlock.
#ifndef LDPIDS_UTIL_THREAD_POOL_H_
#define LDPIDS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ldpids {

// Number of hardware threads, never less than 1 (hardware_concurrency() may
// return 0 on exotic platforms).
std::size_t HardwareThreads();

class ThreadPool {
 public:
  // A pool of `num_threads` total execution lanes: the calling thread
  // participates in every ParallelFor, so `num_threads - 1` workers are
  // spawned. `num_threads` must be >= 1.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total lanes including the calling thread.
  std::size_t num_threads() const { return workers_.size() + 1; }

  // Runs fn(0), ..., fn(n - 1), each exactly once, across at most
  // min(max_threads, num_threads()) lanes, and blocks until all complete.
  // The first exception thrown by any invocation is rethrown here (remaining
  // indices may be skipped once an exception is recorded). Concurrent
  // ParallelFor calls from different threads are serialized; calls from a
  // pool worker run inline on that worker.
  void ParallelFor(std::size_t n, std::size_t max_threads,
                   const std::function<void(std::size_t)>& fn);

  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn) {
    ParallelFor(n, num_threads(), fn);
  }

 private:
  void WorkerLoop();
  // Pulls indices from the shared cursor until the job is drained; records
  // the first exception and cancels the remainder.
  void RunChunk(const std::function<void(std::size_t)>& fn, std::size_t n);

  std::mutex call_mu_;  // serializes ParallelFor invocations

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  bool stop_ = false;

  // State of the in-flight job, guarded by mu_ (cursor_ is the only field
  // touched outside the lock).
  uint64_t generation_ = 0;
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t slots_ = 0;    // workers still allowed to join the job
  std::size_t active_ = 0;   // workers currently inside RunChunk
  std::atomic<std::size_t> cursor_{0};
  std::exception_ptr error_;
};

// Runs fn(0), ..., fn(n - 1) across up to `num_threads` threads on a shared
// process-wide pool, blocking until all complete. `num_threads <= 1` (or
// n <= 1) runs inline with no synchronization at all; results are identical
// either way whenever the tasks are independent.
void ParallelFor(std::size_t num_threads, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

}  // namespace ldpids

#endif  // LDPIDS_UTIL_THREAD_POOL_H_
