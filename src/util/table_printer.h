// Fixed-width console table output used by the benchmark harness to print
// the paper's tables and figure series in a readable form.
#ifndef LDPIDS_UTIL_TABLE_PRINTER_H_
#define LDPIDS_UTIL_TABLE_PRINTER_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace ldpids {

// Collects rows of string cells and prints them with aligned columns.
//
//   TablePrinter t({"method", "eps=0.5", "eps=1.0"});
//   t.AddRow({"LBU", "0.512", "0.273"});
//   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Appends a data row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with `precision` significant decimals.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 4);

  // Renders the table (header, separator, rows) to `os`.
  void Print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the given number of decimals (fixed notation).
std::string FormatDouble(double value, int precision = 4);

}  // namespace ldpids

#endif  // LDPIDS_UTIL_TABLE_PRINTER_H_
