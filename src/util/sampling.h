// Subset-sampling utilities used by the population-division mechanisms.
//
// The population manager keeps the pool of available users as a plain index
// vector; `SampleFromPool` removes a uniform random subset in O(subset) time
// with a partial Fisher-Yates shuffle. This makes LPD/LPA (Algorithms 3 and
// 4) exact — the sampled users really are a uniform subset of the available
// pool — while staying cheap even for million-user populations.
#ifndef LDPIDS_UTIL_SAMPLING_H_
#define LDPIDS_UTIL_SAMPLING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace ldpids {

// Removes `count` uniformly random elements from `pool` (without
// replacement) and returns them. Order of the remaining pool elements is
// not preserved. If `count >= pool->size()`, the whole pool is taken.
std::vector<uint32_t> SampleFromPool(Rng& rng, std::vector<uint32_t>* pool,
                                     std::size_t count);

// Returns a uniformly random subset of {0, ..., n-1} of size `count`
// (Floyd's algorithm would also work; we reuse the pool-based routine for
// simplicity and determinism).
std::vector<uint32_t> SampleSubset(Rng& rng, std::size_t n, std::size_t count);

}  // namespace ldpids

#endif  // LDPIDS_UTIL_SAMPLING_H_
