// Flat open-addressing set of uint64 keys — the ingest shards' per-round
// duplicate-nonce filter.
//
// std::unordered_set spends the dedup budget on a pointer chase per probe
// (node allocation, bucket list walk). Report nonces are plain u64s that
// are only ever probed and inserted, never erased, and the whole set dies
// with the round — exactly the shape a linear-probing table with a
// power-of-two capacity handles in one or two cache lines per lookup.
// Keys are scattered with Mix64 so adversarially sequential nonces do not
// cluster; 0 is the empty-slot sentinel and gets a dedicated flag.
#ifndef LDPIDS_UTIL_U64_SET_H_
#define LDPIDS_UTIL_U64_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace ldpids {

class U64Set {
 public:
  bool Contains(uint64_t x) const {
    if (x == 0) return has_zero_;
    if (slots_.empty()) return false;
    std::size_t i = static_cast<std::size_t>(Mix64(x)) & mask_;
    while (slots_[i] != 0) {
      if (slots_[i] == x) return true;
      i = (i + 1) & mask_;
    }
    return false;
  }

  // Inserts `x`; a no-op if already present.
  void Insert(uint64_t x) {
    if (x == 0) {
      count_ += has_zero_ ? 0 : 1;
      has_zero_ = true;
      return;
    }
    // Grow at 3/4 load; linear probing degrades fast beyond that.
    if ((count_ + 1) * 4 > slots_.size() * 3) Grow();
    std::size_t i = static_cast<std::size_t>(Mix64(x)) & mask_;
    while (slots_[i] != 0) {
      if (slots_[i] == x) return;
      i = (i + 1) & mask_;
    }
    slots_[i] = x;
    ++count_;
  }

  std::size_t size() const { return count_; }

 private:
  void Grow() {
    const std::size_t new_cap = slots_.empty() ? 64 : slots_.size() * 2;
    std::vector<uint64_t> old = std::move(slots_);
    slots_.assign(new_cap, 0);
    mask_ = new_cap - 1;
    for (uint64_t x : old) {
      if (x == 0) continue;
      std::size_t i = static_cast<std::size_t>(Mix64(x)) & mask_;
      while (slots_[i] != 0) i = (i + 1) & mask_;
      slots_[i] = x;
    }
  }

  std::vector<uint64_t> slots_;
  std::size_t mask_ = 0;
  std::size_t count_ = 0;  // includes the zero key when present
  bool has_zero_ = false;
};

}  // namespace ldpids

#endif  // LDPIDS_UTIL_U64_SET_H_
