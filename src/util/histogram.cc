#include "util/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace ldpids {

Histogram CountsToFrequencies(const Counts& counts, uint64_t n) {
  if (n == 0) throw std::invalid_argument("population must be positive");
  Histogram h(counts.size());
  const double inv = 1.0 / static_cast<double>(n);
  for (std::size_t k = 0; k < counts.size(); ++k) {
    h[k] = static_cast<double>(counts[k]) * inv;
  }
  return h;
}

Counts CountValues(const std::vector<uint32_t>& values, std::size_t d) {
  Counts counts(d, 0);
  for (uint32_t v : values) {
    assert(v < d);
    ++counts[v];
  }
  return counts;
}

double MeanSquaredDistance(const Histogram& a, const Histogram& b) {
  assert(a.size() == b.size());
  double total = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    const double diff = a[k] - b[k];
    total += diff * diff;
  }
  return a.empty() ? 0.0 : total / static_cast<double>(a.size());
}

double L1Distance(const Histogram& a, const Histogram& b) {
  assert(a.size() == b.size());
  double total = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) total += std::fabs(a[k] - b[k]);
  return total;
}

double Sum(const Histogram& h) {
  double total = 0.0;
  for (double x : h) total += x;
  return total;
}

double Mean(const Histogram& h) {
  return h.empty() ? 0.0 : Sum(h) / static_cast<double>(h.size());
}

Histogram ClampToUnit(const Histogram& h) {
  Histogram out(h.size());
  for (std::size_t k = 0; k < h.size(); ++k) {
    out[k] = std::clamp(h[k], 0.0, 1.0);
  }
  return out;
}

Histogram Normalize(const Histogram& h) {
  const double total = Sum(h);
  if (total <= 0.0) return h;
  Histogram out(h.size());
  for (std::size_t k = 0; k < h.size(); ++k) out[k] = h[k] / total;
  return out;
}

}  // namespace ldpids
