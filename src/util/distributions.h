// Random-variate samplers used across the library.
//
// Everything is built on `Rng` so results are reproducible. The binomial
// sampler matters most: the cohort-mode frequency-oracle simulation
// (DESIGN.md section 3) replaces O(n) per-user coin flips with O(d) binomial
// draws, so the sampler must be exact and fast for n up to ~10^6.
#ifndef LDPIDS_UTIL_DISTRIBUTIONS_H_
#define LDPIDS_UTIL_DISTRIBUTIONS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace ldpids {

// Standard-normal variate (polar / Marsaglia method). Each call consumes a
// fresh pair of uniforms; no state is carried between calls.
double SampleGaussian(Rng& rng);

// Gaussian with the given mean and standard deviation.
double SampleGaussian(Rng& rng, double mean, double stddev);

// Laplace(0, scale) variate via inverse CDF; used by the centralized-DP
// baselines (Kellaris BD/BA) in src/cdp.
double SampleLaplace(Rng& rng, double scale);

// Binomial(n, p) variate.
//
// Exact for all (n, p):
//  * small n*min(p,1-p): inversion (sequential CDF walk), O(n*p) expected;
//  * otherwise: BTRS transformed-rejection sampler (Hormann 1993), O(1)
//    expected, exact.
uint64_t SampleBinomial(Rng& rng, uint64_t n, double p);

// Multinomial(n, weights) sample via the conditional-binomial decomposition:
// draw count_0 ~ Binomial(n, w_0 / W), then recurse on the remainder. Exact,
// O(k) binomial draws for k categories. `weights` must be non-negative with
// a positive sum. Returns a vector of counts summing to n.
std::vector<uint64_t> SampleMultinomial(Rng& rng, uint64_t n,
                                        const std::vector<double>& weights);

// Scratch-buffer overload for hot paths: writes the counts into `*out`
// (resized to weights.size()), so a caller drawing one multinomial per
// domain value per timestamp reuses one buffer instead of allocating.
// Consumes exactly the same RNG stream as the allocating overload.
void SampleMultinomial(Rng& rng, uint64_t n, const std::vector<double>& weights,
                       std::vector<uint64_t>* out);

// Hypergeometric sample: number of "marked" elements in a size-`draws`
// subset drawn without replacement from a population of size `total`
// containing `marked` marked elements. Exact; inversion for small draws,
// symmetry reductions otherwise.
uint64_t SampleHypergeometric(Rng& rng, uint64_t total, uint64_t marked,
                              uint64_t draws);

// Multivariate hypergeometric: counts per category in a size-`draws` subset
// drawn without replacement from a population with `category_counts`
// elements per category. Exact via sequential conditioning.
std::vector<uint64_t> SampleMultiHypergeometric(
    Rng& rng, const std::vector<uint64_t>& category_counts, uint64_t draws);

// Zipf-like power-law weights w_k = 1 / (k + 1)^s for k in [0, d), normalized
// to sum to 1. Used by the real-world-like dataset simulators.
std::vector<double> ZipfWeights(std::size_t d, double s);

}  // namespace ldpids

#endif  // LDPIDS_UTIL_DISTRIBUTIONS_H_
