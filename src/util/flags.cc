#include "util/flags.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ldpids {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

namespace {
std::string EnvName(const std::string& name) {
  std::string env = "LDPIDS_";
  for (char c : name) {
    env += (c == '-') ? '_' : static_cast<char>(std::toupper(c));
  }
  return env;
}
}  // namespace

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  const auto it = values_.find(name);
  if (it != values_.end()) return it->second;
  if (const char* env = std::getenv(EnvName(name).c_str())) return env;
  return def;
}

double Flags::GetDouble(const std::string& name, double def) const {
  const std::string s = GetString(name, "");
  if (s.empty()) return def;
  try {
    return std::stod(s);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                s + "'");
  }
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  const std::string s = GetString(name, "");
  if (s.empty()) return def;
  try {
    return std::stoll(s);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name +
                                " expects an integer, got '" + s + "'");
  }
}

bool Flags::GetBool(const std::string& name, bool def) const {
  std::string s = GetString(name, "");
  if (s.empty()) return def;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s == "1" || s == "true" || s == "yes" || s == "on";
}

const std::string& Flags::positional(std::size_t i) const {
  if (i >= positional_.size()) {
    throw std::out_of_range("positional flag index");
  }
  return positional_[i];
}

std::size_t ThreadCountFlag(const Flags& flags, std::size_t def) {
  const std::string s = flags.GetString("threads", "");
  if (s.empty()) return def;
  // Strict parse: std::stoll-style leniency ("8abc" -> 8) is not acceptable
  // for a flag that silently reshapes recorded benchmark numbers.
  int64_t threads = 0;
  try {
    std::size_t consumed = 0;
    threads = std::stoll(s, &consumed);
    if (consumed != s.size()) threads = 0;
  } catch (const std::exception&) {
    threads = 0;
  }
  if (threads < 1) {
    throw std::invalid_argument(
        "flag --threads expects a positive integer, got '" + s + "'");
  }
  return static_cast<std::size_t>(threads);
}

double BenchScale(const Flags& flags) {
  double scale = flags.GetDouble("scale", 1.0);
  if (scale <= 0.0) scale = 1.0;
  return std::min(scale, 1.0);
}

}  // namespace ldpids
