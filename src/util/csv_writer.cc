#include "util/csv_writer.h"

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace ldpids {

std::string CsvEscape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("cannot open CSV output: " + path);
  EmitRow(header);
}

void CsvWriter::EmitRow(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << CsvEscape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument("CSV row width mismatch");
  }
  EmitRow(cells);
}

void CsvWriter::WriteRow(const std::string& label,
                         const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) {
    std::ostringstream oss;
    oss << v;
    cells.push_back(oss.str());
  }
  WriteRow(cells);
}

}  // namespace ldpids
