#include "util/buffer_pool.h"

#include <algorithm>
#include <cstring>

namespace ldpids {

bool operator==(const PayloadRef& a, const PayloadRef& b) {
  return a.size() == b.size() &&
         (a.size() == 0 || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

bool operator==(const PayloadRef& a, const std::vector<uint8_t>& b) {
  return a.size() == b.size() &&
         (a.size() == 0 || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

bool operator==(const std::vector<PayloadRef>& a,
                const std::vector<std::vector<uint8_t>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

std::shared_ptr<std::vector<uint8_t>> BufferPool::Get(std::size_t min_bytes) {
  const std::size_t want = std::max(min_bytes, default_block_bytes_);
  std::lock_guard<std::mutex> lock(mu_);
  // use_count() == 1 means the pool holds the only reference: every
  // PayloadRef and decoder that aliased the block has dropped it. New
  // references are only minted here, under the pool lock, so the check
  // cannot race with a concurrent revival.
  for (std::shared_ptr<std::vector<uint8_t>>& block : blocks_) {
    if (block.use_count() == 1 && block->size() >= want) {
      ++reused_;
      return block;
    }
  }
  // No reusable block: evict one idle-but-too-small block if the pool is
  // full, then allocate.
  if (blocks_.size() >= kMaxPooledBlocks) {
    for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
      if (it->use_count() == 1) {
        blocks_.erase(it);
        break;
      }
    }
  }
  auto block = std::make_shared<std::vector<uint8_t>>(want);
  ++allocated_;
  if (blocks_.size() < kMaxPooledBlocks) blocks_.push_back(block);
  return block;
}

uint64_t BufferPool::allocated_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return allocated_;
}

uint64_t BufferPool::reused_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reused_;
}

}  // namespace ldpids
