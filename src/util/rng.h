// Deterministic pseudo-random number generation for LDP-IDS.
//
// The whole library is seeded explicitly so that every experiment is
// reproducible bit-for-bit on the same platform. Two generators are provided:
//
//  * `Rng` — a stateful xoshiro256++ generator. This is the workhorse used by
//    frequency oracles and stream mechanisms. It satisfies the
//    UniformRandomBitGenerator concept, so it can also drive the <random>
//    distributions where that is convenient.
//
//  * `CounterRng` (see `HashCounter` below) — a stateless counter-based
//    construction used by lazy datasets: the value of user `u` at timestamp
//    `t` is a pure function of (seed, u, t). This lets population-division
//    mechanisms materialize only the users they sample instead of storing an
//    N x T matrix.
#ifndef LDPIDS_UTIL_RNG_H_
#define LDPIDS_UTIL_RNG_H_

#include <cstdint>
#include <limits>

namespace ldpids {

// SplitMix64 step; used for seeding and for the stateless counter hash.
// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
// generators" (the standard seeding recommendation of the xoshiro authors).
uint64_t SplitMix64(uint64_t& state);

// Stateless mixing of a 64-bit input to a 64-bit output (fixed-key hash).
// This is the finalizer of SplitMix64 applied once; it is a bijection with
// good avalanche behaviour, sufficient for synthetic data generation.
uint64_t Mix64(uint64_t x);

// Combines a seed and two counters (e.g. user id and timestamp) into a
// uniform 64-bit value. Deterministic and stateless.
uint64_t HashCounter(uint64_t seed, uint64_t a, uint64_t b);

// xoshiro256++ 1.0 by Blackman & Vigna (public domain reference
// implementation, reimplemented). Period 2^256 - 1, passes BigCrush.
class Rng {
 public:
  using result_type = uint64_t;

  // Seeds all 256 bits of state from `seed` via SplitMix64, per the
  // generator authors' recommendation. Distinct seeds give independent
  // looking streams.
  explicit Rng(uint64_t seed = 0xA5A5A5A5DEADBEEFULL);

  // UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }
  result_type operator()() { return NextU64(); }

  // Next uniform 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  // Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  // nearly-divisionless unbiased method.
  uint64_t UniformInt(uint64_t bound);

  // Bernoulli draw with success probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Derives an independent child generator; useful for giving each simulated
  // user or each experiment repetition its own stream.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace ldpids

#endif  // LDPIDS_UTIL_RNG_H_
