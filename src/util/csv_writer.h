// Minimal CSV emission so benchmark results can be consumed by plotting
// scripts. Values containing commas, quotes or newlines are quoted per
// RFC 4180.
#ifndef LDPIDS_UTIL_CSV_WRITER_H_
#define LDPIDS_UTIL_CSV_WRITER_H_

#include <cstddef>
#include <fstream>
#include <string>
#include <vector>

namespace ldpids {

class CsvWriter {
 public:
  // Opens `path` for writing and emits `header` as the first row.
  // Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void WriteRow(const std::vector<std::string>& cells);

  // Convenience for a label followed by numeric columns.
  void WriteRow(const std::string& label, const std::vector<double>& values);

 private:
  void EmitRow(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t columns_;
};

// Escapes one CSV field (quotes it when required).
std::string CsvEscape(const std::string& field);

}  // namespace ldpids

#endif  // LDPIDS_UTIL_CSV_WRITER_H_
