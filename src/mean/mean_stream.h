// w-event LDP mean release over infinite numeric streams — the paper's
// framework (Sections 5-6) instantiated for mean estimation instead of
// histograms, demonstrating footnote 2's "query type is orthogonal" claim.
//
// Provided mechanisms (numeric analogues of the histogram family):
//   * MeanLbu — budget division, eps/w per timestamp, everyone reports;
//   * MeanLpu — population division, one fresh 1/w group per timestamp with
//     the full budget;
//   * MeanLpa — adaptive population absorption: a dissimilarity cohort
//     estimates dis = (m_hat - last_release)^2 - Var (the scalar Theorem
//     5.2) and a publication cohort is spent only when dis exceeds the
//     potential publication error, with LPA's absorb/nullify schedule.
//
// Privacy: identical accounting to the histogram mechanisms — MeanLbu
// splits the window budget; MeanLpu/MeanLpa let each user report at most
// once per window (enforced by PopulationManager) with full budget.
#ifndef LDPIDS_MEAN_MEAN_STREAM_H_
#define LDPIDS_MEAN_MEAN_STREAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/population_manager.h"
#include "mean/mean_oracle.h"
#include "util/rng.h"

namespace ldpids {

// Ground truth for a numeric stream: each of N users holds a value in
// [-1, 1] at every timestamp.
class NumericStreamDataset {
 public:
  virtual ~NumericStreamDataset() = default;
  virtual std::string name() const = 0;
  virtual uint64_t num_users() const = 0;
  virtual std::size_t length() const = 0;
  virtual double value(uint64_t user, std::size_t t) const = 0;

  // Population mean at t (cached on first use). Thread-safe like
  // StreamDataset::TrueCounts: first access fills the slot under a mutex,
  // warmed reads are lock-free acquire loads.
  double TrueMean(std::size_t t) const;

 private:
  mutable std::mutex cache_mu_;
  mutable std::atomic<bool> cache_ready_{false};
  mutable std::vector<double> mean_cache_;
  mutable std::vector<std::atomic<bool>> cached_;
};

// Synthetic numeric stream: per-user value = clamp(base_t + personal noise)
// where base_t follows a sine plus random walk. Lazy/counter-based like the
// categorical datasets.
class SyntheticNumericDataset final : public NumericStreamDataset {
 public:
  SyntheticNumericDataset(std::string name, uint64_t num_users,
                          std::vector<double> base_series, double user_spread,
                          uint64_t seed);

  std::string name() const override { return name_; }
  uint64_t num_users() const override { return num_users_; }
  std::size_t length() const override { return base_.size(); }
  double value(uint64_t user, std::size_t t) const override;

 private:
  std::string name_;
  uint64_t num_users_;
  std::vector<double> base_;
  double user_spread_;
  uint64_t seed_;
};

// Drifting sine base series in [-0.8, 0.8]; the default workload.
std::shared_ptr<SyntheticNumericDataset> MakeNumericSineDataset(
    uint64_t num_users = 50000, std::size_t length = 200,
    double period_b = 0.05, double user_spread = 0.3, uint64_t seed = 17);

struct MeanStepResult {
  double release = 0.0;
  bool published = false;
  uint64_t messages = 0;
};

struct MeanRunResult {
  std::vector<double> releases;
  std::vector<bool> published;
  uint64_t total_messages = 0;
  uint64_t num_publications = 0;
  uint64_t num_users = 0;
  std::size_t timestamps = 0;
  double Cfpu() const;
};

class MeanStreamMechanism {
 public:
  virtual ~MeanStreamMechanism() = default;
  virtual std::string name() const = 0;

  // Sequential per-timestamp processing, as in StreamMechanism.
  MeanStepResult Step(const NumericStreamDataset& data, std::size_t t);
  MeanRunResult Run(const NumericStreamDataset& data);

 protected:
  MeanStreamMechanism(double epsilon, std::size_t window, uint64_t num_users,
                      uint64_t seed);
  virtual MeanStepResult DoStep(const NumericStreamDataset& data,
                                std::size_t t) = 0;

  const double epsilon_;
  const std::size_t window_;
  const uint64_t num_users_;
  Rng rng_;
  double last_release_ = 0.0;
  std::size_t next_t_ = 0;
};

// Factory: "MeanLBU" | "MeanLPU" | "MeanLPA" (case-insensitive).
std::unique_ptr<MeanStreamMechanism> CreateMeanMechanism(
    const std::string& name, double epsilon, std::size_t window,
    uint64_t num_users, uint64_t seed = 7);

std::vector<std::string> AllMeanMechanismNames();

}  // namespace ldpids

#endif  // LDPIDS_MEAN_MEAN_STREAM_H_
