#include "mean/mean_stream.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ldpids {

double NumericStreamDataset::TrueMean(std::size_t t) const {
  if (t >= length()) throw std::out_of_range("timestamp beyond stream");
  // Lock-free fast path for warmed slots; see StreamDataset::TrueCounts.
  if (cache_ready_.load(std::memory_order_acquire) &&
      cached_[t].load(std::memory_order_acquire)) {
    return mean_cache_[t];
  }
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (!cache_ready_.load(std::memory_order_relaxed)) {
    mean_cache_.resize(length(), 0.0);
    cached_ = std::vector<std::atomic<bool>>(length());
    cache_ready_.store(true, std::memory_order_release);
  }
  if (!cached_[t].load(std::memory_order_relaxed)) {
    double total = 0.0;
    for (uint64_t u = 0; u < num_users(); ++u) total += value(u, t);
    mean_cache_[t] = total / static_cast<double>(num_users());
    cached_[t].store(true, std::memory_order_release);
  }
  return mean_cache_[t];
}

SyntheticNumericDataset::SyntheticNumericDataset(
    std::string name, uint64_t num_users, std::vector<double> base_series,
    double user_spread, uint64_t seed)
    : name_(std::move(name)),
      num_users_(num_users),
      base_(std::move(base_series)),
      user_spread_(user_spread),
      seed_(seed) {
  if (num_users_ == 0) throw std::invalid_argument("need at least one user");
  if (base_.empty()) throw std::invalid_argument("empty base series");
}

double SyntheticNumericDataset::value(uint64_t user, std::size_t t) const {
  // Personal offset: uniform in [-spread, spread], deterministic per
  // (seed, user, t).
  const double u01 =
      static_cast<double>(HashCounter(seed_, user, t) >> 11) * 0x1.0p-53;
  const double offset = (2.0 * u01 - 1.0) * user_spread_;
  return std::clamp(base_[t] + offset, -1.0, 1.0);
}

std::shared_ptr<SyntheticNumericDataset> MakeNumericSineDataset(
    uint64_t num_users, std::size_t length, double period_b,
    double user_spread, uint64_t seed) {
  std::vector<double> base(length);
  for (std::size_t t = 0; t < length; ++t) {
    base[t] = 0.6 * std::sin(period_b * static_cast<double>(t)) +
              0.2 * std::sin(0.31 * period_b * static_cast<double>(t));
  }
  return std::make_shared<SyntheticNumericDataset>(
      "NumericSine", num_users, std::move(base), user_spread, seed);
}

double MeanRunResult::Cfpu() const {
  if (num_users == 0 || timestamps == 0) return 0.0;
  return static_cast<double>(total_messages) /
         (static_cast<double>(num_users) * static_cast<double>(timestamps));
}

MeanStreamMechanism::MeanStreamMechanism(double epsilon, std::size_t window,
                                         uint64_t num_users, uint64_t seed)
    : epsilon_(epsilon),
      window_(window),
      num_users_(num_users),
      rng_(seed) {
  if (!(epsilon > 0.0)) throw std::invalid_argument("epsilon must be > 0");
  if (window == 0) throw std::invalid_argument("window must be >= 1");
  if (num_users == 0) throw std::invalid_argument("empty population");
}

MeanStepResult MeanStreamMechanism::Step(const NumericStreamDataset& data,
                                         std::size_t t) {
  if (t != next_t_) {
    throw std::logic_error("mean mechanism timestamps must be sequential");
  }
  if (data.num_users() != num_users_) {
    throw std::invalid_argument("dataset population mismatch");
  }
  MeanStepResult result = DoStep(data, t);
  last_release_ = result.release;
  ++next_t_;
  return result;
}

MeanRunResult MeanStreamMechanism::Run(const NumericStreamDataset& data) {
  MeanRunResult run;
  run.num_users = data.num_users();
  run.timestamps = data.length();
  for (std::size_t t = 0; t < data.length(); ++t) {
    const MeanStepResult step = Step(data, t);
    run.releases.push_back(step.release);
    run.published.push_back(step.published);
    run.total_messages += step.messages;
    run.num_publications += step.published ? 1 : 0;
  }
  return run;
}

namespace {

// Budget division, uniform: everyone reports eps/w at every timestamp.
class MeanLbu final : public MeanStreamMechanism {
 public:
  MeanLbu(double epsilon, std::size_t window, uint64_t num_users,
          uint64_t seed)
      : MeanStreamMechanism(epsilon, window, num_users, seed),
        oracle_(epsilon / static_cast<double>(window)) {}

  std::string name() const override { return "MeanLBU"; }

 protected:
  MeanStepResult DoStep(const NumericStreamDataset& data,
                        std::size_t t) override {
    MeanAccumulator acc;
    for (uint64_t u = 0; u < num_users_; ++u) {
      acc.Consume(oracle_.Perturb(data.value(u, t), rng_));
    }
    return {acc.Estimate(), true, acc.num_reports()};
  }

 private:
  MeanOracle oracle_;
};

// Population division, uniform: one 1/w group per timestamp, full budget.
class MeanLpu final : public MeanStreamMechanism {
 public:
  MeanLpu(double epsilon, std::size_t window, uint64_t num_users,
          uint64_t seed)
      : MeanStreamMechanism(epsilon, window, num_users, seed),
        oracle_(epsilon),
        population_(num_users, window) {
    if (num_users < window) {
      throw std::invalid_argument("MeanLPU needs at least w users");
    }
  }

  std::string name() const override { return "MeanLPU"; }

 protected:
  MeanStepResult DoStep(const NumericStreamDataset& data,
                        std::size_t t) override {
    const auto group = population_.Sample(
        static_cast<std::size_t>(num_users_ / window_), rng_);
    MeanAccumulator acc;
    for (uint32_t u : group) acc.Consume(oracle_.Perturb(data.value(u, t), rng_));
    population_.EndTimestamp();
    return {acc.Estimate(), true, acc.num_reports()};
  }

 private:
  MeanOracle oracle_;
  PopulationManager population_;
};

// Population division, adaptive absorption (the LPA schedule on a scalar).
class MeanLpa final : public MeanStreamMechanism {
 public:
  MeanLpa(double epsilon, std::size_t window, uint64_t num_users,
          uint64_t seed)
      : MeanStreamMechanism(epsilon, window, num_users, seed),
        oracle_(epsilon),
        population_(num_users, window) {
    if (num_users < 2 * window) {
      throw std::invalid_argument("MeanLPA needs at least 2*w users");
    }
  }

  std::string name() const override { return "MeanLPA"; }

 protected:
  MeanStepResult DoStep(const NumericStreamDataset& data,
                        std::size_t t) override {
    MeanStepResult result;
    const uint64_t unit = num_users_ / (2 * window_);

    // M1: dissimilarity cohort — scalar Theorem 5.2:
    // dis = (m_hat - last)^2 - Var(m_hat) is unbiased for (m - last)^2.
    const auto dis_users =
        population_.Sample(static_cast<std::size_t>(unit), rng_);
    MeanAccumulator dis_acc;
    for (uint32_t u : dis_users) {
      dis_acc.Consume(oracle_.Perturb(data.value(u, t), rng_));
    }
    result.messages += dis_acc.num_reports();
    const double m_hat = dis_acc.Estimate();
    const double dis = (m_hat - last_release_) * (m_hat - last_release_) -
                       oracle_.MeanVariance(dis_acc.num_reports());

    // M2: absorption schedule (Alg. 4 on cohort sizes).
    const std::int64_t t_nullified =
        static_cast<std::int64_t>(last_pub_users_ / unit) - 1;
    const std::int64_t since_last = static_cast<std::int64_t>(t) - last_pub_;
    if (since_last <= t_nullified) {
      result.release = last_release_;
      population_.EndTimestamp();
      return result;
    }
    const std::int64_t t_absorb =
        static_cast<std::int64_t>(t) - (last_pub_ + t_nullified);
    const uint64_t n_pp =
        unit * static_cast<uint64_t>(std::min<std::int64_t>(
                   t_absorb, static_cast<std::int64_t>(window_)));
    const double err = oracle_.MeanVariance(std::max<uint64_t>(n_pp, 1));
    if (dis > err && n_pp > 0) {
      const auto pub_users =
          population_.Sample(static_cast<std::size_t>(n_pp), rng_);
      MeanAccumulator pub_acc;
      for (uint32_t u : pub_users) {
        pub_acc.Consume(oracle_.Perturb(data.value(u, t), rng_));
      }
      result.release = pub_acc.Estimate();
      result.published = true;
      result.messages += pub_acc.num_reports();
      last_pub_ = static_cast<std::int64_t>(t);
      last_pub_users_ = pub_acc.num_reports();
    } else {
      result.release = last_release_;
    }
    population_.EndTimestamp();
    return result;
  }

 private:
  MeanOracle oracle_;
  PopulationManager population_;
  std::int64_t last_pub_ = -1;
  uint64_t last_pub_users_ = 0;
};

}  // namespace

std::unique_ptr<MeanStreamMechanism> CreateMeanMechanism(
    const std::string& name, double epsilon, std::size_t window,
    uint64_t num_users, uint64_t seed) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (upper == "MEANLBU") {
    return std::make_unique<MeanLbu>(epsilon, window, num_users, seed);
  }
  if (upper == "MEANLPU") {
    return std::make_unique<MeanLpu>(epsilon, window, num_users, seed);
  }
  if (upper == "MEANLPA") {
    return std::make_unique<MeanLpa>(epsilon, window, num_users, seed);
  }
  throw std::invalid_argument("unknown mean mechanism: " + name);
}

std::vector<std::string> AllMeanMechanismNames() {
  return {"MeanLBU", "MeanLPU", "MeanLPA"};
}

}  // namespace ldpids
