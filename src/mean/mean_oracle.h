// LDP mean estimation for numeric values in [-1, 1] — Duchi et al.'s
// one-bit mechanism (FOCS 2013 / "Privacy aware learning"), the numeric
// counterpart of the frequency oracles in src/fo.
//
// The paper's footnote 2 notes that "other aggregate analyses, such as
// count and mean estimation, can be applicable, as the query type is
// orthogonal to the streaming data setting"; src/mean realizes that claim:
// this oracle plugs into the mean-stream mechanisms of mean_stream.h the
// same way the FOs plug into the histogram mechanisms.
//
// Client: holding x in [-1, 1], report the single bit
//     B = +C with probability 1/2 + x (e^eps - 1) / (2 (e^eps + 1)),
//     B = -C otherwise,           where C = (e^eps + 1) / (e^eps - 1).
// The two-point output distribution satisfies eps-LDP and E[B] = x.
//
// Server: the sample mean of the reports is an unbiased mean estimate with
//     Var(B | x) = C^2 - x^2   =>   Var(mean) <= C^2 / n.
#ifndef LDPIDS_MEAN_MEAN_ORACLE_H_
#define LDPIDS_MEAN_MEAN_ORACLE_H_

#include <cstdint>

#include "util/rng.h"

namespace ldpids {

class MeanOracle {
 public:
  // eps must be positive.
  explicit MeanOracle(double epsilon);

  // Client-side perturbation of one value (clamped to [-1, 1]).
  double Perturb(double value, Rng& rng) const;

  // The report magnitude C = (e^eps + 1) / (e^eps - 1).
  double report_magnitude() const { return c_; }
  double epsilon() const { return epsilon_; }

  // Worst-case variance of the mean of n reports: C^2 / n (exact per-user
  // variance is C^2 - x^2; the mechanisms use the data-independent bound,
  // mirroring the FO path's V(eps, n)).
  double MeanVariance(uint64_t n) const;

 private:
  double epsilon_;
  double c_;
};

// Server-side accumulator for one collection round.
class MeanAccumulator {
 public:
  void Consume(double report);
  // Unbiased mean estimate; requires at least one report.
  double Estimate() const;
  uint64_t num_reports() const { return n_; }

 private:
  double sum_ = 0.0;
  uint64_t n_ = 0;
};

}  // namespace ldpids

#endif  // LDPIDS_MEAN_MEAN_ORACLE_H_
