#include "mean/mean_oracle.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace ldpids {

MeanOracle::MeanOracle(double epsilon) : epsilon_(epsilon) {
  if (!(epsilon > 0.0)) {
    throw std::invalid_argument("mean oracle epsilon must be positive");
  }
  const double e = std::exp(epsilon);
  c_ = (e + 1.0) / (e - 1.0);
}

double MeanOracle::Perturb(double value, Rng& rng) const {
  const double x = std::clamp(value, -1.0, 1.0);
  const double p_plus = 0.5 + x / (2.0 * c_);
  return rng.Bernoulli(p_plus) ? c_ : -c_;
}

double MeanOracle::MeanVariance(uint64_t n) const {
  if (n == 0) throw std::invalid_argument("population must be positive");
  return c_ * c_ / static_cast<double>(n);
}

void MeanAccumulator::Consume(double report) {
  sum_ += report;
  ++n_;
}

double MeanAccumulator::Estimate() const {
  if (n_ == 0) throw std::logic_error("no reports to average");
  return sum_ / static_cast<double>(n_);
}

}  // namespace ldpids
