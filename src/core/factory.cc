#include "core/factory.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/lba.h"
#include "core/lbd.h"
#include "core/lbu.h"
#include "core/lpa.h"
#include "core/lpd.h"
#include "core/lpu.h"
#include "core/lsp.h"

namespace ldpids {

std::unique_ptr<StreamMechanism> CreateMechanism(const std::string& name,
                                                 const MechanismConfig& config,
                                                 uint64_t num_users) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (upper == "LBU") return std::make_unique<LbuMechanism>(config, num_users);
  if (upper == "LSP") return std::make_unique<LspMechanism>(config, num_users);
  if (upper == "LBD") return std::make_unique<LbdMechanism>(config, num_users);
  if (upper == "LBA") return std::make_unique<LbaMechanism>(config, num_users);
  if (upper == "LPU") return std::make_unique<LpuMechanism>(config, num_users);
  if (upper == "LPD") return std::make_unique<LpdMechanism>(config, num_users);
  if (upper == "LPA") return std::make_unique<LpaMechanism>(config, num_users);
  throw std::invalid_argument("unknown mechanism: " + name);
}

std::vector<std::string> AllMechanismNames() {
  return {"LBU", "LSP", "LBD", "LBA", "LPU", "LPD", "LPA"};
}

std::vector<std::string> BudgetDivisionMechanismNames() {
  return {"LBU", "LSP", "LBD", "LBA"};
}

std::vector<std::string> PopulationDivisionMechanismNames() {
  return {"LPU", "LPD", "LPA"};
}

}  // namespace ldpids
