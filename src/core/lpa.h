// LPA — LDP Population Absorption (paper Algorithm 4).
//
// The population-division analogue of LBA: publication users are nominally
// allocated uniformly, N/(2w) per timestamp. A publication absorbs the
// allocations of the timestamps skipped since the last publication (capped
// at w), and then nullifies the following t_N = |U_{l,2}| / (N/(2w)) - 1
// allocations, during which the release is forced to approximate. Because
// every reporting user spends the full budget eps and only cohort sizes
// vary, the error of the m-th publication scales as V(eps, (w+m)N/(4wm)) —
// strictly better than LBA's V((w+m)eps/(4wm), N) (Section 6.3.2), and the
// best adaptive method in the paper's evaluation.
#ifndef LDPIDS_CORE_LPA_H_
#define LDPIDS_CORE_LPA_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/mechanism.h"
#include "core/population_manager.h"

namespace ldpids {

class LpaMechanism final : public StreamMechanism {
 public:
  // Requires num_users >= 2 * window.
  LpaMechanism(MechanismConfig config, uint64_t num_users);

  std::string name() const override { return "LPA"; }

 protected:
  StepResult DoStep(CollectorContext& ctx, std::size_t t) override;

 private:
  // Delegation target: `window` has already been validated against
  // `num_users` before the base class or any member is constructed, and the
  // mem-initializer list uses the explicit parameter instead of reaching
  // back into `config_` mid-construction. Takes `config` by rvalue
  // reference so binding it is not a move — the move happens inside this
  // constructor's initializer list, after both arguments are evaluated.
  LpaMechanism(std::size_t window, MechanismConfig&& config,
               uint64_t num_users);

  PopulationManager population_;
  std::int64_t last_publication_ = -1;
  uint64_t last_publication_users_ = 0;
  Histogram dis_estimate_;  // M_{t,1} scratch, reused across timestamps
};

}  // namespace ldpids

#endif  // LDPIDS_CORE_LPA_H_
