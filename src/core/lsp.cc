#include "core/lsp.h"

#include <cstddef>
#include <cstdint>
#include <utility>

namespace ldpids {

LspMechanism::LspMechanism(MechanismConfig config, uint64_t num_users)
    : StreamMechanism(std::move(config), num_users),
      ledger_(config_.epsilon, config_.window) {}

StepResult LspMechanism::DoStep(CollectorContext& ctx, std::size_t t) {
  StepResult result;
  if (t % config_.window == 0) {
    // Sampling timestamp: everyone reports with the full budget. The next
    // round is the next sampling timestamp, known w steps ahead — a
    // pipelined collector can ingest it across all w - 1 approximation
    // steps while this round estimates.
    ctx.PlanNextCollect(t + config_.window, config_.epsilon);
    uint64_t n = 0;
    CollectViaFo(ctx, t, config_.epsilon, nullptr, &n, &result.release);
    result.published = true;
    result.messages = n;
    ledger_.Record(0.0, config_.epsilon);
  } else {
    // Approximation: re-release r_{t-1}; nobody reports.
    result.release = last_release_;
    result.published = false;
    result.messages = 0;
    ledger_.Record(0.0, 0.0);
  }
  return result;
}

}  // namespace ldpids
