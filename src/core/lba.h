// LBA — LDP Budget Absorption (paper Algorithm 2).
//
// Adaptive budget division with uniform-then-absorb allocation. The
// publication half of the budget is nominally eps/(2w) per timestamp; a
// publication at timestamp l may *absorb* the unused allocations of the
// preceding skipped timestamps (up to w of them), and must then *nullify*
// the following t_N = eps_{l,2} / (eps/(2w)) - 1 allocations to pay the
// loan back, during which the release is forced to approximate.
//
// Compared with LBD's exponential decay, absorption keeps the budget of the
// m-th publication at Theta(eps (w+m) / (w m)) instead of eps / 2^{m+1}
// (Section 5.4.2), so the error grows much more mildly with the number of
// publications.
#ifndef LDPIDS_CORE_LBA_H_
#define LDPIDS_CORE_LBA_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/budget_ledger.h"
#include "core/mechanism.h"

namespace ldpids {

class LbaMechanism final : public StreamMechanism {
 public:
  LbaMechanism(MechanismConfig config, uint64_t num_users);

  std::string name() const override { return "LBA"; }

 protected:
  StepResult DoStep(CollectorContext& ctx, std::size_t t) override;

 private:
  BudgetLedger ledger_;
  // Timestamp of the last publication; -1 before the first one.
  std::int64_t last_publication_ = -1;
  double last_publication_epsilon_ = 0.0;
  Histogram dis_estimate_;  // M_{t,1} scratch, reused across timestamps
};

}  // namespace ldpids

#endif  // LDPIDS_CORE_LBA_H_
