// Private dissimilarity estimation (paper Section 5.3.1, Theorem 5.2).
//
// The adaptive mechanisms must decide, at every timestamp, whether the
// stream has drifted enough from the last release r_l to justify spending
// budget/users on a fresh publication. The true dissimilarity
//
//   dis* = (1/d) sum_k (c_t[k] - r_l[k])^2                         (Eq. 3)
//
// is not observable under LDP; Theorem 5.2 shows that, for any unbiased FO
// estimate c_hat of c_t,
//
//   dis = (1/d) sum_k (c_hat[k] - r_l[k])^2 - (1/d) sum_k Var(c_hat[k])
//
// is an unbiased estimator of dis* (and LDP by post-processing). The
// variance-correction term is the FO's analytic mean variance V(eps, n).
#ifndef LDPIDS_CORE_DISSIMILARITY_H_
#define LDPIDS_CORE_DISSIMILARITY_H_

#include "util/histogram.h"

namespace ldpids {

// The paper's Eq. (4): mean squared distance between the private estimate
// and the last release, debiased by the estimate's mean variance. May be
// negative (the estimator is unbiased, not non-negative); callers compare it
// against `err` as-is.
double EstimateDissimilarity(const Histogram& private_estimate,
                             const Histogram& last_release,
                             double estimate_mean_variance);

// The unobservable ground truth dis* (Eq. 3); used by tests to verify the
// estimator's unbiasedness and by diagnostics.
double TrueDissimilarity(const Histogram& true_histogram,
                         const Histogram& last_release);

}  // namespace ldpids

#endif  // LDPIDS_CORE_DISSIMILARITY_H_
