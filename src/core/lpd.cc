#include "core/lpd.h"

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/dissimilarity.h"

namespace ldpids {

namespace {
// Validates the LPD population precondition before any member construction;
// see the equivalent helper in lpa.cc for the rationale.
std::size_t CheckedLpdWindow(std::size_t window, uint64_t num_users) {
  if (num_users < 2 * static_cast<uint64_t>(window)) {
    throw std::invalid_argument("LPD needs at least 2*w users");
  }
  return window;
}
}  // namespace

LpdMechanism::LpdMechanism(MechanismConfig config, uint64_t num_users)
    : LpdMechanism(CheckedLpdWindow(config.window, num_users),
                   std::move(config), num_users) {}

LpdMechanism::LpdMechanism(std::size_t window, MechanismConfig&& config,
                           uint64_t num_users)
    : StreamMechanism(std::move(config), num_users),
      population_(num_users, window),
      publication_users_(window) {}

StepResult LpdMechanism::DoStep(CollectorContext& ctx, std::size_t t) {
  StepResult result;

  // --- Sub-mechanism M_{t,1}: dissimilarity users (Alg. 3 lines 3-6) ---
  const std::size_t dis_group_size =
      static_cast<std::size_t>(num_users_ / (2 * config_.window));
  const std::vector<uint32_t> dis_users =
      population_.Sample(dis_group_size, rng_);
  uint64_t n_dis = 0;
  CollectViaFo(ctx, t, config_.epsilon, &dis_users, &n_dis, &dis_estimate_);
  const double dis = EstimateDissimilarity(
      dis_estimate_, last_release_, MeanVariance(config_.epsilon, n_dis));
  result.messages += n_dis;

  // --- Sub-mechanism M_{t,2}: publication-user allocation (lines 7-17) ---
  // Publication users still available in the active window (line 7), half of
  // them provisionally assigned (line 8).
  const double remaining = static_cast<double>(num_users_) / 2.0 -
                           publication_users_.SumLastWMinus1();
  const uint64_t n_pp =
      remaining > 0.0 ? static_cast<uint64_t>(remaining / 2.0) : 0;
  uint64_t pub_users_spent = 0;
  if (n_pp >= config_.min_publication_users && n_pp > 0) {
    const double err = MeanVariance(config_.epsilon, n_pp);  // line 9
    if (dis > err) {
      // Publication strategy (lines 11-14).
      const std::vector<uint32_t> pub_users =
          population_.Sample(static_cast<std::size_t>(n_pp), rng_);
      if (!pub_users.empty()) {
        uint64_t n_pub = 0;
        CollectViaFo(ctx, t, config_.epsilon, &pub_users, &n_pub,
                     &result.release);
        result.published = true;
        result.messages += n_pub;
        pub_users_spent = n_pub;
      }
    }
  }
  if (!result.published) {
    // Approximation strategy (line 16).
    result.release = last_release_;
  }
  publication_users_.Push(static_cast<double>(pub_users_spent));
  // Recycling users that fall out of the next window (lines 18-20).
  population_.EndTimestamp();
  return result;
}

}  // namespace ldpids
