// Name-based construction of stream mechanisms, for sweeps, tests, and the
// benchmark harness.
#ifndef LDPIDS_CORE_FACTORY_H_
#define LDPIDS_CORE_FACTORY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/mechanism.h"

namespace ldpids {

// Creates the mechanism with the given name (LBU, LSP, LBD, LBA, LPU, LPD,
// LPA — case-insensitive) for a population of `num_users`. Throws
// std::invalid_argument for unknown names or invalid configurations.
std::unique_ptr<StreamMechanism> CreateMechanism(const std::string& name,
                                                 const MechanismConfig& config,
                                                 uint64_t num_users);

// All mechanism names, in the paper's presentation order.
std::vector<std::string> AllMechanismNames();

// The two framework families, for grouped reporting.
std::vector<std::string> BudgetDivisionMechanismNames();      // LBU LSP LBD LBA
std::vector<std::string> PopulationDivisionMechanismNames();  // LPU LPD LPA

}  // namespace ldpids

#endif  // LDPIDS_CORE_FACTORY_H_
