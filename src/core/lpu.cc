#include "core/lpu.h"

#include <stdexcept>

namespace ldpids {

LpuMechanism::LpuMechanism(MechanismConfig config, uint64_t num_users)
    : StreamMechanism(std::move(config), num_users),
      population_(num_users, config_.window) {
  if (num_users_ < config_.window) {
    throw std::invalid_argument("LPU needs at least w users");
  }
}

StepResult LpuMechanism::DoStep(const StreamDataset& data, std::size_t t) {
  const std::size_t group_size =
      static_cast<std::size_t>(num_users_ / config_.window);
  const std::vector<uint32_t> group = population_.Sample(group_size, rng_);

  StepResult result;
  uint64_t n = 0;
  result.release = CollectViaFo(data, t, config_.epsilon, &group, &n);
  result.published = true;
  result.messages = n;
  population_.EndTimestamp();
  return result;
}

}  // namespace ldpids
