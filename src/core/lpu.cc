#include "core/lpu.h"

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ldpids {

namespace {
// Validates the LPU population precondition before any member construction;
// see the equivalent helper in lpa.cc for the rationale.
std::size_t CheckedLpuWindow(std::size_t window, uint64_t num_users) {
  if (num_users < static_cast<uint64_t>(window)) {
    throw std::invalid_argument("LPU needs at least w users");
  }
  return window;
}
}  // namespace

LpuMechanism::LpuMechanism(MechanismConfig config, uint64_t num_users)
    : LpuMechanism(CheckedLpuWindow(config.window, num_users),
                   std::move(config), num_users) {}

LpuMechanism::LpuMechanism(std::size_t window, MechanismConfig&& config,
                           uint64_t num_users)
    : StreamMechanism(std::move(config), num_users),
      population_(num_users, window) {}

StepResult LpuMechanism::DoStep(CollectorContext& ctx, std::size_t t) {
  const std::size_t group_size =
      static_cast<std::size_t>(num_users_ / config_.window);
  const std::vector<uint32_t> group = population_.Sample(group_size, rng_);

  StepResult result;
  uint64_t n = 0;
  CollectViaFo(ctx, t, config_.epsilon, &group, &n, &result.release);
  result.published = true;
  result.messages = n;
  population_.EndTimestamp();
  return result;
}

}  // namespace ldpids
