// Runtime privacy accounting for budget-division mechanisms.
//
// Theorem 5.1 reduces w-event LDP to: for every user and every timestamp i,
// sum_{tau = i-w+1}^{i} eps_tau <= eps. Budget-division mechanisms make all
// users report identically, so one ledger covers everyone. The ledger
// records the (dissimilarity, publication) budget spent at each timestamp
// and *throws* if any window ever exceeds the total — turning the privacy
// proof (Theorem 5.3) into an executable assertion.
#ifndef LDPIDS_CORE_BUDGET_LEDGER_H_
#define LDPIDS_CORE_BUDGET_LEDGER_H_

#include <cstddef>

#include "stream/window.h"

namespace ldpids {

class BudgetLedger {
 public:
  // `total_epsilon` is the w-event budget; `w` the window size.
  BudgetLedger(double total_epsilon, std::size_t w);

  // Publication budget spent in the last w-1 recorded timestamps — the
  // quantity Alg. 1 line 7 subtracts when computing the remaining budget at
  // the *next* timestamp.
  double PublicationSpentInActiveWindow() const;

  // Records the budgets consumed at the current timestamp and checks the
  // w-event invariant; throws std::logic_error on violation.
  void Record(double dissimilarity_epsilon, double publication_epsilon);

  double total_epsilon() const { return total_epsilon_; }
  std::size_t timestamps() const { return pub_.pushes(); }

  // Window sums over the last min(w, t) recorded timestamps.
  double WindowSpent() const { return dis_.Sum() + pub_.Sum(); }
  double WindowPublicationSpent() const { return pub_.Sum(); }

 private:
  double total_epsilon_;
  SlidingWindowSum dis_;
  SlidingWindowSum pub_;
};

}  // namespace ldpids

#endif  // LDPIDS_CORE_BUDGET_LEDGER_H_
