// Stream-mechanism interface for w-event LDP release (paper Sections 4-6).
//
// A `StreamMechanism` processes one timestamp at a time: it pulls the FO
// aggregate of every collection round it performs from a
// `CollectorContext` (core/collector.h) and produces the server-side
// release r_t. In offline simulation the context is a `DatasetCollector`
// (ground truth through a `StreamDataset`, which stands in for the
// distributed users); in online serving (src/service/) it is backed by
// sharded wire-report ingestion, so the server only ever sees perturbed
// reports. Every mechanism guarantees w-event epsilon-LDP:
//
//   * budget-division mechanisms (LBU, LSP, LBD, LBA) make each user report
//     at every timestamp but with per-timestamp budgets summing to <= eps in
//     any window of w timestamps (Theorem 5.1);
//   * population-division mechanisms (LPU, LPD, LPA) let each user report at
//     most once per window, with the full budget eps (Theorem 6.2).
//
// Both invariants are enforced at runtime by `BudgetLedger` and
// `PopulationManager` respectively — a buggy mechanism throws instead of
// silently over-spending privacy.
#ifndef LDPIDS_CORE_MECHANISM_H_
#define LDPIDS_CORE_MECHANISM_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "analysis/postprocess.h"
#include "core/collector.h"
#include "fo/frequency_oracle.h"
#include "stream/dataset.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace ldpids {

// Configuration shared by all mechanisms.
struct MechanismConfig {
  double epsilon = 1.0;    // total w-event LDP budget
  std::size_t window = 20;  // w
  std::string fo = "GRR";  // frequency oracle name (GRR | OUE | OLH)
  uint64_t seed = 7;       // mechanism RNG seed

  // LPD's minimal publication-cohort size u_min (Alg. 3 line 10). With the
  // exponential population decay, N_pp can shrink below any useful size;
  // publications are suppressed once it does.
  uint64_t min_publication_users = 1;

  // When true, users are simulated individually through the full client
  // protocol (FoSketch::AddUser). When false (default), the server-side
  // aggregate is drawn from its exact per-bin distribution in O(d) per round
  // (FoSketch::AddCohort) — see DESIGN.md §3.
  bool per_user_simulation = false;

  // Consistency post-processing applied to every release (privacy-free by
  // the post-processing theorem); see analysis/postprocess.h. The processed
  // release is also what the adaptive mechanisms compare against in the
  // next dissimilarity estimate.
  PostProcess post_process = PostProcess::kNone;
};

// Output of one timestamp.
struct StepResult {
  Histogram release;        // r_t
  bool published = false;   // fresh publication (vs approximation)
  uint64_t messages = 0;    // user->server reports sent at this timestamp
};

// Output of a whole run.
struct RunResult {
  std::vector<Histogram> releases;
  std::vector<bool> published;
  uint64_t total_messages = 0;
  uint64_t num_publications = 0;
  uint64_t num_users = 0;
  std::size_t timestamps = 0;

  // Communication frequency per user per timestamp (paper Section 5.4.3):
  // average number of reports each user sends per timestamp.
  double Cfpu() const;
};

class StreamMechanism {
 public:
  virtual ~StreamMechanism() = default;

  virtual std::string name() const = 0;

  // Session API: processes the next timestamp, pulling every FO aggregate
  // it needs from `ctx`. Must be called with t = 0, 1, 2, ... in order
  // (throws std::logic_error otherwise). `ctx.num_users()` must match the
  // population the mechanism was created for, and `ctx.domain()` must stay
  // constant across the stream. This is what the online serving layer
  // (src/service/) drives one timestamp at a time.
  StepResult Step(CollectorContext& ctx, std::size_t t);

  // Offline convenience: simulates the collection rounds from `data`'s
  // ground truth via a DatasetCollector bound to this mechanism's RNG.
  StepResult Step(const StreamDataset& data, std::size_t t);

  // Runs over `data` from t = 0 to min(length, max_timestamps) - 1. A thin
  // adapter over the session API: one DatasetCollector drives every Step,
  // producing bit-identical results to the historical fused loop.
  RunResult Run(const StreamDataset& data,
                std::size_t max_timestamps =
                    std::numeric_limits<std::size_t>::max());

  // Session-driven run: `steps` timestamps pulled from `ctx`.
  RunResult Run(CollectorContext& ctx, std::size_t steps);

  const MechanismConfig& config() const { return config_; }
  uint64_t num_users() const { return num_users_; }
  const Histogram& last_release() const { return last_release_; }

 protected:
  StreamMechanism(MechanismConfig config, uint64_t num_users);

  // Mechanism-specific logic for one timestamp; every FO aggregate is
  // pulled through `ctx`, never from ground truth directly.
  virtual StepResult DoStep(CollectorContext& ctx, std::size_t t) = 0;

  // Runs one FO collection round with budget `epsilon` at timestamp `t`.
  // If `subset` is null the whole population reports (budget division);
  // otherwise only the listed users do (population division). Writes the
  // unbiased estimate into `*out` (resized to the domain, so mechanisms
  // reuse one release/estimate buffer across timestamps) and the number of
  // reporters into `*n_out`.
  void CollectViaFo(CollectorContext& ctx, std::size_t t, double epsilon,
                    const std::vector<uint32_t>* subset, uint64_t* n_out,
                    Histogram* out);

  // The paper's V(eps, n): FO mean per-bin variance for the configured
  // domain size. `domain_` is latched on the first Step.
  double MeanVariance(double epsilon, uint64_t n) const;

  const MechanismConfig config_;
  const FrequencyOracle& fo_;
  const uint64_t num_users_;
  Rng rng_;
  Histogram last_release_;   // r_{t-1}; zeros before the first release
  std::size_t next_t_ = 0;
  std::size_t domain_ = 0;   // latched from the collector on first Step
};

}  // namespace ldpids

#endif  // LDPIDS_CORE_MECHANISM_H_
