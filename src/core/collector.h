// Collection-round abstraction — the seam between stream mechanisms and
// whatever supplies their LDP aggregates.
//
// A mechanism's per-timestamp logic (budget allocation, publish-vs-
// approximate decisions) needs only the *result* of each FO collection
// round: an unbiased estimate plus the number of reporters. Where those
// reports come from is a deployment detail:
//
//   * offline simulation — `DatasetCollector` simulates the cohort from a
//     `StreamDataset`'s ground truth, exactly as the pre-session
//     `StreamMechanism` did (same RNG stream, same sketch paths), so
//     `Run` over a dataset stays bit-identical to the historical results;
//   * online serving — `service::MechanismSession` implements the same
//     interface over sharded wire-report ingestion (src/service/), where
//     the server only ever sees perturbed packets.
#ifndef LDPIDS_CORE_COLLECTOR_H_
#define LDPIDS_CORE_COLLECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fo/frequency_oracle.h"
#include "stream/dataset.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace ldpids {

// Supplies the server-side FO aggregate for each collection round a
// mechanism performs. One context drives one mechanism for the lifetime of
// a stream: `domain()` and `num_users()` must stay constant.
class CollectorContext {
 public:
  virtual ~CollectorContext() = default;

  virtual std::size_t domain() const = 0;
  virtual uint64_t num_users() const = 0;

  // Runs one FO collection round at timestamp `t` with per-user budget
  // `epsilon`. `subset == nullptr` means the whole population reports
  // (budget division); otherwise only the listed users do (population
  // division). Writes the unbiased estimate into `*out` (resized to
  // domain()) and the number of reporters into `*n_out` when non-null.
  virtual void Collect(std::size_t t, double epsilon,
                       const std::vector<uint32_t>* subset, uint64_t* n_out,
                       Histogram* out) = 0;

  // Pipelining hint: the mechanism declares that its next Collect call —
  // possibly at a later timestamp — will be exactly (t, epsilon, whole
  // population). A pipelined collector (service::MechanismSession with
  // SessionOptions::pipeline_depth > 1) announces that round immediately,
  // so its client production, network transit and ingest folding overlap
  // the current round's EstimateInto and the mechanism's post-processing;
  // serial collectors ignore the hint, so offline simulation results are
  // untouched.
  //
  // A plan is a commitment, not a guess: announcing a round makes real
  // users spend real privacy budget, so a mechanism may only plan a round
  // it will unconditionally perform, and the next Collect must match the
  // plan exactly (a pipelined collector fails the session otherwise).
  // Only whole-population rounds are plannable — a cohort sampled from the
  // mechanism's RNG mid-step cannot be known ahead of the step. The
  // budget-division mechanisms plan their fixed-budget dissimilarity (or
  // only) round; the population-division mechanisms never plan.
  virtual void PlanNextCollect(std::size_t t, double epsilon) {
    (void)t;
    (void)epsilon;
  }
};

// Offline adapter: simulates each collection round from a StreamDataset's
// ground truth. Holds a reference to the caller's RNG (the mechanism's own
// generator) so the draw order — and therefore every released histogram —
// matches the pre-session code path bit for bit.
class DatasetCollector final : public CollectorContext {
 public:
  // `per_user_simulation` selects FoSketch::AddUser per user versus the
  // O(d) AddCohort aggregate draw (MechanismConfig::per_user_simulation).
  DatasetCollector(const StreamDataset& data, const FrequencyOracle& fo,
                   bool per_user_simulation, Rng& rng);

  std::size_t domain() const override { return data_.domain(); }
  uint64_t num_users() const override { return data_.num_users(); }

  void Collect(std::size_t t, double epsilon,
               const std::vector<uint32_t>* subset, uint64_t* n_out,
               Histogram* out) override;

 private:
  const StreamDataset& data_;
  const FrequencyOracle& fo_;
  const bool per_user_simulation_;
  Rng& rng_;
  Counts subset_counts_scratch_;  // reused by the cohort path
};

}  // namespace ldpids

#endif  // LDPIDS_CORE_COLLECTOR_H_
