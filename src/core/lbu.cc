#include "core/lbu.h"

#include <cstddef>
#include <cstdint>
#include <utility>

namespace ldpids {

LbuMechanism::LbuMechanism(MechanismConfig config, uint64_t num_users)
    : StreamMechanism(std::move(config), num_users),
      ledger_(config_.epsilon, config_.window) {}

StepResult LbuMechanism::DoStep(CollectorContext& ctx, std::size_t t) {
  const double step_epsilon =
      config_.epsilon / static_cast<double>(config_.window);
  StepResult result;
  // LBU's schedule is static — every timestamp is one whole-population
  // round at eps/w — so the next round can be announced before this one's
  // estimate (the pipelined serving path overlaps the two).
  ctx.PlanNextCollect(t + 1, step_epsilon);
  uint64_t n = 0;
  CollectViaFo(ctx, t, step_epsilon, nullptr, &n, &result.release);
  result.published = true;
  result.messages = n;
  // All budget is "publication" budget here; LBU has no dissimilarity phase.
  ledger_.Record(0.0, step_epsilon);
  return result;
}

}  // namespace ldpids
