#include "core/lbu.h"

#include <cstddef>
#include <cstdint>
#include <utility>

namespace ldpids {

LbuMechanism::LbuMechanism(MechanismConfig config, uint64_t num_users)
    : StreamMechanism(std::move(config), num_users),
      ledger_(config_.epsilon, config_.window) {}

StepResult LbuMechanism::DoStep(CollectorContext& ctx, std::size_t t) {
  const double step_epsilon =
      config_.epsilon / static_cast<double>(config_.window);
  StepResult result;
  uint64_t n = 0;
  CollectViaFo(ctx, t, step_epsilon, nullptr, &n, &result.release);
  result.published = true;
  result.messages = n;
  // All budget is "publication" budget here; LBU has no dissimilarity phase.
  ledger_.Record(0.0, step_epsilon);
  return result;
}

}  // namespace ldpids
