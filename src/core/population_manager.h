// User-pool management for population-division mechanisms (Algs. 3 and 4).
//
// Responsibilities:
//   * keep the available user set U_A as an index pool with O(m) uniform
//     subset sampling (partial Fisher-Yates);
//   * remember which users were taken at each timestamp so they can be
//     recycled once that timestamp falls out of the sliding window
//     ("Recycling Users", Alg. 3 lines 18-20);
//   * enforce the w-event LDP invariant of Theorem 6.2 — no user
//     participates twice within any window of w timestamps — by tracking
//     each user's last participation time and throwing on violation.
#ifndef LDPIDS_CORE_POPULATION_MANAGER_H_
#define LDPIDS_CORE_POPULATION_MANAGER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "util/rng.h"

namespace ldpids {

class PopulationManager {
 public:
  // `num_users` users indexed 0..N-1, window size `w`. The manager uses the
  // caller's RNG so mechanism runs stay reproducible from one seed.
  PopulationManager(uint64_t num_users, std::size_t w);

  // Draws `count` users uniformly without replacement from the available
  // pool (clamped to the pool size) and marks them used at the current
  // timestamp. May be called several times per timestamp (dissimilarity
  // users, then publication users).
  std::vector<uint32_t> Sample(std::size_t count, Rng& rng);

  // Closes the current timestamp: users sampled w timestamps ago return to
  // the pool. Must be called exactly once per timestamp, after all Sample()
  // calls for that timestamp.
  void EndTimestamp();

  uint64_t num_users() const { return num_users_; }
  std::size_t window() const { return window_; }
  std::size_t available() const { return pool_.size(); }
  std::size_t current_timestamp() const { return t_; }

 private:
  uint64_t num_users_;
  std::size_t window_;
  std::size_t t_ = 0;
  std::vector<uint32_t> pool_;
  // used_[age] holds the users taken at timestamp t_ - age... front is the
  // current timestamp; once the deque grows past w the back is recycled.
  std::deque<std::vector<uint32_t>> used_;
  // Last timestamp each user reported at (-1 if never); the privacy ledger.
  std::vector<int64_t> last_participation_;
};

}  // namespace ldpids

#endif  // LDPIDS_CORE_POPULATION_MANAGER_H_
