#include "core/lbd.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "core/dissimilarity.h"

namespace ldpids {

LbdMechanism::LbdMechanism(MechanismConfig config, uint64_t num_users)
    : StreamMechanism(std::move(config), num_users),
      ledger_(config_.epsilon, config_.window) {}

StepResult LbdMechanism::DoStep(CollectorContext& ctx, std::size_t t) {
  const double w = static_cast<double>(config_.window);
  StepResult result;

  // --- Sub-mechanism M_{t,1}: private dissimilarity estimation ---
  const double eps_dis = config_.epsilon / (2.0 * w);  // Alg. 1 line 3
  uint64_t n_dis = 0;
  CollectViaFo(ctx, t, eps_dis, nullptr, &n_dis, &dis_estimate_);
  const double dis = EstimateDissimilarity(dis_estimate_, last_release_,
                                           MeanVariance(eps_dis, n_dis));
  result.messages += n_dis;

  // --- Sub-mechanism M_{t,2}: strategy determination & publication ---
  // Remaining publication budget in the active window (line 7), then half of
  // it provisionally assigned (line 8).
  const double eps_remaining =
      config_.epsilon / 2.0 - ledger_.PublicationSpentInActiveWindow();
  const double eps_pub = std::max(0.0, eps_remaining / 2.0);
  double eps_pub_spent = 0.0;
  if (eps_pub > 0.0) {
    const double err = MeanVariance(eps_pub, num_users_);  // line 9
    if (dis > err) {
      // Publication strategy (lines 11-13). The publication is the last
      // round of this timestamp and the next round — t+1's dissimilarity
      // estimate — has a fixed budget, so it is announced now: a pipelined
      // collector ingests it while this publication estimates.
      ctx.PlanNextCollect(t + 1, eps_dis);
      uint64_t n_pub = 0;
      CollectViaFo(ctx, t, eps_pub, nullptr, &n_pub, &result.release);
      result.published = true;
      result.messages += n_pub;
      eps_pub_spent = eps_pub;
    }
  }
  if (!result.published) {
    // Approximation strategy (line 15): r_t = r_{t-1}, eps_{t,2} = 0.
    result.release = last_release_;
    ctx.PlanNextCollect(t + 1, eps_dis);
  }
  ledger_.Record(eps_dis, eps_pub_spent);
  return result;
}

}  // namespace ldpids
