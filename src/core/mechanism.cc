#include "core/mechanism.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ldpids {

double RunResult::Cfpu() const {
  if (num_users == 0 || timestamps == 0) return 0.0;
  return static_cast<double>(total_messages) /
         (static_cast<double>(num_users) * static_cast<double>(timestamps));
}

StreamMechanism::StreamMechanism(MechanismConfig config, uint64_t num_users)
    : config_(std::move(config)),
      fo_(GetFrequencyOracle(config_.fo)),
      num_users_(num_users),
      rng_(config_.seed) {
  if (!(config_.epsilon > 0.0)) {
    throw std::invalid_argument("epsilon must be positive");
  }
  if (config_.window == 0) {
    throw std::invalid_argument("window size w must be >= 1");
  }
  if (num_users_ == 0) {
    throw std::invalid_argument("population must be non-empty");
  }
}

StepResult StreamMechanism::Step(CollectorContext& ctx, std::size_t t) {
  if (t != next_t_) {
    throw std::logic_error("mechanism timestamps must be sequential");
  }
  if (ctx.num_users() != num_users_) {
    throw std::invalid_argument("collector population mismatch");
  }
  if (domain_ == 0) {
    domain_ = ctx.domain();
    if (domain_ == 0) {
      throw std::invalid_argument("collector domain must be positive");
    }
    last_release_.assign(domain_, 0.0);  // r_0 = <0, ..., 0> (Alg. 1 line 1)
  } else if (domain_ != ctx.domain()) {
    throw std::invalid_argument("collector domain changed mid-stream");
  }
  StepResult result = DoStep(ctx, t);
  if (config_.post_process != PostProcess::kNone && result.published) {
    result.release = ApplyPostProcess(result.release, config_.post_process);
  }
  last_release_ = result.release;
  ++next_t_;
  return result;
}

StepResult StreamMechanism::Step(const StreamDataset& data, std::size_t t) {
  DatasetCollector collector(data, fo_, config_.per_user_simulation, rng_);
  return Step(collector, t);
}

RunResult StreamMechanism::Run(const StreamDataset& data,
                               std::size_t max_timestamps) {
  DatasetCollector collector(data, fo_, config_.per_user_simulation, rng_);
  return Run(collector, std::min(data.length(), max_timestamps));
}

RunResult StreamMechanism::Run(CollectorContext& ctx, std::size_t steps) {
  RunResult run;
  run.num_users = ctx.num_users();
  run.timestamps = steps;
  run.releases.reserve(steps);
  run.published.reserve(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    StepResult step = Step(ctx, t);
    run.total_messages += step.messages;
    run.num_publications += step.published ? 1 : 0;
    run.published.push_back(step.published);
    run.releases.push_back(std::move(step.release));
  }
  return run;
}

void StreamMechanism::CollectViaFo(CollectorContext& ctx, std::size_t t,
                                   double epsilon,
                                   const std::vector<uint32_t>* subset,
                                   uint64_t* n_out, Histogram* out) {
  ctx.Collect(t, epsilon, subset, n_out, out);
}

double StreamMechanism::MeanVariance(double epsilon, uint64_t n) const {
  return fo_.MeanVariance(epsilon, n, domain_);
}

}  // namespace ldpids
