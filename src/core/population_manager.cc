#include "core/population_manager.h"

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/sampling.h"

namespace ldpids {

PopulationManager::PopulationManager(uint64_t num_users, std::size_t w)
    : num_users_(num_users), window_(w) {
  if (num_users == 0) throw std::invalid_argument("empty population");
  if (w == 0) throw std::invalid_argument("window size must be >= 1");
  pool_.resize(num_users);
  std::iota(pool_.begin(), pool_.end(), 0u);
  used_.emplace_front();  // bucket for timestamp 0
  last_participation_.assign(num_users, -1);
}

std::vector<uint32_t> PopulationManager::Sample(std::size_t count, Rng& rng) {
  std::vector<uint32_t> picked = SampleFromPool(rng, &pool_, count);
  for (uint32_t u : picked) {
    const int64_t last = last_participation_[u];
    if (last >= 0 &&
        static_cast<int64_t>(t_) - last < static_cast<int64_t>(window_)) {
      throw std::logic_error(
          "w-event participation invariant violated: user sampled twice "
          "within a window");
    }
    last_participation_[u] = static_cast<int64_t>(t_);
    used_.front().push_back(u);
  }
  return picked;
}

void PopulationManager::EndTimestamp() {
  // Users taken at timestamp t - w + 1 fall outside the *next* active
  // window [t - w + 2, t + 1], so they become available again.
  if (used_.size() >= window_) {
    std::vector<uint32_t> recycled = std::move(used_.back());
    used_.pop_back();
    pool_.insert(pool_.end(), recycled.begin(), recycled.end());
  }
  used_.emplace_front();
  ++t_;
}

}  // namespace ldpids
