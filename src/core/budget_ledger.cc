#include "core/budget_ledger.h"

#include <cstddef>
#include <stdexcept>

namespace ldpids {

namespace {
// Floating-point slack for the invariant check: budget arithmetic chains w
// additions, so allow a relative 1e-9 margin.
constexpr double kTolerance = 1e-9;
}  // namespace

BudgetLedger::BudgetLedger(double total_epsilon, std::size_t w)
    : total_epsilon_(total_epsilon), dis_(w), pub_(w) {
  if (!(total_epsilon > 0.0)) {
    throw std::invalid_argument("total epsilon must be positive");
  }
}

double BudgetLedger::PublicationSpentInActiveWindow() const {
  return pub_.SumLastWMinus1();
}

void BudgetLedger::Record(double dissimilarity_epsilon,
                          double publication_epsilon) {
  if (dissimilarity_epsilon < 0.0 || publication_epsilon < 0.0) {
    throw std::logic_error("negative privacy budget recorded");
  }
  dis_.Push(dissimilarity_epsilon);
  pub_.Push(publication_epsilon);
  if (WindowSpent() > total_epsilon_ * (1.0 + kTolerance)) {
    throw std::logic_error(
        "w-event budget invariant violated: window spend exceeds epsilon");
  }
}

}  // namespace ldpids
