// LBU — LDP Budget Uniform method (paper Section 5.2.1).
//
// The naive budget-division baseline: the window budget eps is split evenly
// over the w timestamps, and at every timestamp every user reports through
// the FO with budget eps/w. The release is always a fresh estimate, so
// MSE_LBU = V(eps/w, N), which blows up quickly with w because LDP variance
// is O((e^eps - 1)^{-2}) in the per-timestamp budget.
#ifndef LDPIDS_CORE_LBU_H_
#define LDPIDS_CORE_LBU_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/budget_ledger.h"
#include "core/mechanism.h"

namespace ldpids {

class LbuMechanism final : public StreamMechanism {
 public:
  LbuMechanism(MechanismConfig config, uint64_t num_users);

  std::string name() const override { return "LBU"; }

 protected:
  StepResult DoStep(CollectorContext& ctx, std::size_t t) override;

 private:
  BudgetLedger ledger_;
};

}  // namespace ldpids

#endif  // LDPIDS_CORE_LBU_H_
