#include "core/dissimilarity.h"

namespace ldpids {

double EstimateDissimilarity(const Histogram& private_estimate,
                             const Histogram& last_release,
                             double estimate_mean_variance) {
  return MeanSquaredDistance(private_estimate, last_release) -
         estimate_mean_variance;
}

double TrueDissimilarity(const Histogram& true_histogram,
                         const Histogram& last_release) {
  return MeanSquaredDistance(true_histogram, last_release);
}

}  // namespace ldpids
