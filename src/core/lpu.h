// LPU — LDP Population Uniform method (paper Section 6.1).
//
// The population-division counterpart of LBU: the N users are divided into
// w disjoint groups of ~N/w; at each timestamp one fresh group reports with
// the *entire* budget eps, and groups rotate so nobody reports twice within
// a window. MSE_LPU = V(eps, N/w), which Theorem 6.1 proves strictly smaller
// than LBU's V(eps/w, N) for GRR/OUE — population division costs O(1/n)
// where budget division costs O((e^eps - 1)^{-2}).
//
// Communication drops w-fold as well: only N/w users upload per timestamp.
#ifndef LDPIDS_CORE_LPU_H_
#define LDPIDS_CORE_LPU_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/mechanism.h"
#include "core/population_manager.h"

namespace ldpids {

class LpuMechanism final : public StreamMechanism {
 public:
  // Requires num_users >= window (each timestamp needs a non-empty group).
  LpuMechanism(MechanismConfig config, uint64_t num_users);

  std::string name() const override { return "LPU"; }

 protected:
  StepResult DoStep(CollectorContext& ctx, std::size_t t) override;

 private:
  // Delegation target with a pre-validated window; see lpa.h.
  LpuMechanism(std::size_t window, MechanismConfig&& config,
               uint64_t num_users);

  PopulationManager population_;
};

}  // namespace ldpids

#endif  // LDPIDS_CORE_LPU_H_
