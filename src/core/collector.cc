#include "core/collector.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ldpids {

DatasetCollector::DatasetCollector(const StreamDataset& data,
                                   const FrequencyOracle& fo,
                                   bool per_user_simulation, Rng& rng)
    : data_(data),
      fo_(fo),
      per_user_simulation_(per_user_simulation),
      rng_(rng) {}

void DatasetCollector::Collect(std::size_t t, double epsilon,
                               const std::vector<uint32_t>* subset,
                               uint64_t* n_out, Histogram* out) {
  FoParams params{epsilon, data_.domain()};
  std::unique_ptr<FoSketch> sketch = fo_.CreateSketch(params);
  if (per_user_simulation_) {
    if (subset == nullptr) {
      const uint64_t n = data_.num_users();
      for (uint64_t u = 0; u < n; ++u) {
        sketch->AddUser(data_.value(u, t), rng_);
      }
    } else {
      for (uint32_t u : *subset) sketch->AddUser(data_.value(u, t), rng_);
    }
  } else if (subset == nullptr) {
    sketch->AddCohort(data_.TrueCounts(t), rng_);
  } else {
    data_.SubsetCountsInto(*subset, t, &subset_counts_scratch_);
    sketch->AddCohort(subset_counts_scratch_, rng_);
  }
  if (n_out != nullptr) *n_out = sketch->num_users();
  sketch->EstimateInto(out);
}

}  // namespace ldpids
