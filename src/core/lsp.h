// LSP — LDP Sampling method (paper Sections 5.2.2 and 6.1).
//
// Each user invests the entire budget eps at a single sampling timestamp per
// window (every w-th timestamp); the other w-1 releases approximate the last
// publication. Equivalently — the population-division reading the paper
// gives in Section 6.1 — one group holds the whole population and reports
// once per window. MSE is V(eps, N) at sampling timestamps plus the
// data-dependent drift (c_t - c_l)^2 at the skipped ones: excellent on
// near-static streams, poor on fluctuating ones, and consistently bad for
// real-time event detection (Fig. 7) because changes between sampling
// points are invisible.
#ifndef LDPIDS_CORE_LSP_H_
#define LDPIDS_CORE_LSP_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/budget_ledger.h"
#include "core/mechanism.h"

namespace ldpids {

class LspMechanism final : public StreamMechanism {
 public:
  LspMechanism(MechanismConfig config, uint64_t num_users);

  std::string name() const override { return "LSP"; }

 protected:
  StepResult DoStep(CollectorContext& ctx, std::size_t t) override;

 private:
  BudgetLedger ledger_;
};

}  // namespace ldpids

#endif  // LDPIDS_CORE_LSP_H_
