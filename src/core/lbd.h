// LBD — LDP Budget Distribution (paper Algorithm 1).
//
// Adaptive budget division. The window budget is split eps/2 for
// dissimilarity estimation and eps/2 for publications. At each timestamp:
//
//   M_{t,1}: all users report with eps/(2w); the server forms the unbiased
//            dissimilarity estimate dis (Theorem 5.2) against r_{t-1}.
//   M_{t,2}: half of the *remaining* publication budget in the active window
//            is provisionally assigned (exponential decay across
//            publications: eps/4, eps/8, ...). If dis > err — the potential
//            publication error V(eps_{t,2}, N) — all users report again and
//            a fresh estimate is released; otherwise the last release is
//            republished and the provisional budget is returned.
//
// Budget spent at timestamps that have slid out of the window is implicitly
// recycled, because the "remaining" computation only subtracts the last
// w-1 timestamps.
#ifndef LDPIDS_CORE_LBD_H_
#define LDPIDS_CORE_LBD_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/budget_ledger.h"
#include "core/mechanism.h"

namespace ldpids {

class LbdMechanism final : public StreamMechanism {
 public:
  LbdMechanism(MechanismConfig config, uint64_t num_users);

  std::string name() const override { return "LBD"; }

 protected:
  StepResult DoStep(CollectorContext& ctx, std::size_t t) override;

 private:
  BudgetLedger ledger_;
  Histogram dis_estimate_;  // M_{t,1} scratch, reused across timestamps
};

}  // namespace ldpids

#endif  // LDPIDS_CORE_LBD_H_
