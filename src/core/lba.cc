#include "core/lba.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "core/dissimilarity.h"

namespace ldpids {

LbaMechanism::LbaMechanism(MechanismConfig config, uint64_t num_users)
    : StreamMechanism(std::move(config), num_users),
      ledger_(config_.epsilon, config_.window) {}

StepResult LbaMechanism::DoStep(CollectorContext& ctx, std::size_t t) {
  const double w = static_cast<double>(config_.window);
  const double unit = config_.epsilon / (2.0 * w);  // per-timestamp allocation
  StepResult result;

  // --- Sub-mechanism M_{t,1}: identical to LBD (Alg. 2 line 3) ---
  const double eps_dis = unit;
  uint64_t n_dis = 0;
  CollectViaFo(ctx, t, eps_dis, nullptr, &n_dis, &dis_estimate_);
  const double dis = EstimateDissimilarity(dis_estimate_, last_release_,
                                           MeanVariance(eps_dis, n_dis));
  result.messages += n_dis;

  // --- Sub-mechanism M_{t,2}: absorption schedule ---
  // Timestamps nullified by the last publication (line 4).
  const std::int64_t t_nullified =
      static_cast<std::int64_t>(std::llround(last_publication_epsilon_ /
                                             unit)) -
      1;
  const std::int64_t since_last =
      static_cast<std::int64_t>(t) - last_publication_;
  double eps_pub_spent = 0.0;
  if (since_last <= t_nullified) {
    // Nullified: pay back the absorbed budget with a forced approximation
    // (lines 5-6). No further round this timestamp; t+1 opens with the
    // fixed-budget dissimilarity round.
    result.release = last_release_;
    ctx.PlanNextCollect(t + 1, unit);
  } else {
    // Absorbable allocations since the nullification ended (line 8), capped
    // at w (line 9).
    const std::int64_t t_absorb =
        static_cast<std::int64_t>(t) - (last_publication_ + t_nullified);
    const double eps_pub =
        unit * static_cast<double>(
                   std::min<std::int64_t>(t_absorb,
                                          static_cast<std::int64_t>(w)));
    const double err = MeanVariance(eps_pub, num_users_);  // line 10
    if (dis > err) {
      // Publication strategy (lines 12-14). The publication closes this
      // timestamp, so t+1's fixed-budget dissimilarity round is announced
      // first — a pipelined collector overlaps its ingestion with the
      // publication's estimate and post-processing.
      ctx.PlanNextCollect(t + 1, unit);
      uint64_t n_pub = 0;
      CollectViaFo(ctx, t, eps_pub, nullptr, &n_pub, &result.release);
      result.published = true;
      result.messages += n_pub;
      eps_pub_spent = eps_pub;
      last_publication_ = static_cast<std::int64_t>(t);
      last_publication_epsilon_ = eps_pub;
    } else {
      // Approximation strategy (line 16).
      result.release = last_release_;
      ctx.PlanNextCollect(t + 1, unit);
    }
  }
  ledger_.Record(eps_dis, eps_pub_spent);
  return result;
}

}  // namespace ldpids
