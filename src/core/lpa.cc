#include "core/lpa.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/dissimilarity.h"

namespace ldpids {

namespace {
// Validates the LPA population precondition up front — before the base
// class or PopulationManager is constructed — and returns the window size
// so the delegating constructor below passes an explicit, pre-validated
// value instead of re-reading the config mid-initialization. (The previous
// form read the base's `config_` after moving `config` into it: well-defined
// but fragile — one rename away from a genuine moved-from read, and it
// built the PopulationManager before validating.)
std::size_t CheckedLpaWindow(std::size_t window, uint64_t num_users) {
  if (num_users < 2 * static_cast<uint64_t>(window)) {
    throw std::invalid_argument("LPA needs at least 2*w users");
  }
  return window;
}
}  // namespace

LpaMechanism::LpaMechanism(MechanismConfig config, uint64_t num_users)
    : LpaMechanism(CheckedLpaWindow(config.window, num_users),
                   std::move(config), num_users) {}

LpaMechanism::LpaMechanism(std::size_t window, MechanismConfig&& config,
                           uint64_t num_users)
    : StreamMechanism(std::move(config), num_users),
      population_(num_users, window) {}

StepResult LpaMechanism::DoStep(CollectorContext& ctx, std::size_t t) {
  StepResult result;
  const uint64_t unit =
      num_users_ / (2 * static_cast<uint64_t>(config_.window));

  // --- Sub-mechanism M_{t,1}: identical to LPD (Alg. 4 line 3) ---
  const std::vector<uint32_t> dis_users =
      population_.Sample(static_cast<std::size_t>(unit), rng_);
  uint64_t n_dis = 0;
  CollectViaFo(ctx, t, config_.epsilon, &dis_users, &n_dis, &dis_estimate_);
  const double dis = EstimateDissimilarity(
      dis_estimate_, last_release_, MeanVariance(config_.epsilon, n_dis));
  result.messages += n_dis;

  // --- Sub-mechanism M_{t,2}: absorption schedule over users ---
  // Timestamps nullified by the last publication (line 4).
  const std::int64_t t_nullified =
      static_cast<std::int64_t>(last_publication_users_ / unit) - 1;
  const std::int64_t since_last =
      static_cast<std::int64_t>(t) - last_publication_;
  if (since_last <= t_nullified) {
    // Nullified: forced approximation (lines 5-6).
    result.release = last_release_;
  } else {
    // Absorbable allocations (line 8), capped at w (line 9).
    const std::int64_t t_absorb =
        static_cast<std::int64_t>(t) - (last_publication_ + t_nullified);
    const uint64_t n_pp =
        unit * static_cast<uint64_t>(std::min<std::int64_t>(
                   t_absorb, static_cast<std::int64_t>(config_.window)));
    const double err = MeanVariance(config_.epsilon, n_pp);  // line 10
    if (dis > err && n_pp > 0) {
      // Publication strategy (lines 12-15).
      const std::vector<uint32_t> pub_users =
          population_.Sample(static_cast<std::size_t>(n_pp), rng_);
      uint64_t n_pub = 0;
      CollectViaFo(ctx, t, config_.epsilon, &pub_users, &n_pub,
                   &result.release);
      result.published = true;
      result.messages += n_pub;
      last_publication_ = static_cast<std::int64_t>(t);
      last_publication_users_ = n_pub;
    } else {
      // Approximation strategy (line 17).
      result.release = last_release_;
    }
  }
  population_.EndTimestamp();
  return result;
}

}  // namespace ldpids
