// LPD — LDP Population Distribution (paper Algorithm 3).
//
// The population-division analogue of LBD: the population is split into
// N/2 dissimilarity users (spread uniformly, N/(2w) per timestamp, each
// reporting once per window with the full budget eps) and N/2 publication
// users, which are assigned to publication timestamps in an exponentially
// decreasing fashion — each publication takes half of the publication users
// still available in the active window.
//
// The strategy choice compares the unbiased dissimilarity estimate dis with
// the potential publication error err = V(eps, N_pp); because the budget
// stays fixed at eps and only the cohort size shrinks, err grows only as
// O(1/N_pp) where LBD's grows as O((e^{eps_t2} - 1)^{-2}) — the core insight
// of the paper (Section 6.1). A publication is suppressed when fewer than
// `min_publication_users` would participate (Alg. 3 line 10's u_min guard).
//
// Used users are recycled once their timestamp leaves the sliding window,
// so the mechanism runs on truly infinite streams.
#ifndef LDPIDS_CORE_LPD_H_
#define LDPIDS_CORE_LPD_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/mechanism.h"
#include "core/population_manager.h"
#include "stream/window.h"

namespace ldpids {

class LpdMechanism final : public StreamMechanism {
 public:
  // Requires num_users >= 2 * window so each timestamp gets at least one
  // dissimilarity user.
  LpdMechanism(MechanismConfig config, uint64_t num_users);

  std::string name() const override { return "LPD"; }

 protected:
  StepResult DoStep(CollectorContext& ctx, std::size_t t) override;

 private:
  // Delegation target with a pre-validated window; see lpa.h.
  LpdMechanism(std::size_t window, MechanismConfig&& config,
               uint64_t num_users);

  PopulationManager population_;
  SlidingWindowSum publication_users_;  // |U_{i,2}| over the window
  Histogram dis_estimate_;  // M_{t,1} scratch, reused across timestamps
};

}  // namespace ldpids

#endif  // LDPIDS_CORE_LPD_H_
