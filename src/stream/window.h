// Sliding-window accumulator over the last w timestamps.
//
// Both framework families need "sum of X over the current window": LBD/LBA
// sum spent publication budget (Alg. 1 line 7), LPD/LPA sum used publication
// users (Alg. 3 line 7). `SlidingWindowSum` keeps the last w values in a
// ring buffer with an O(1) running sum.
#ifndef LDPIDS_STREAM_WINDOW_H_
#define LDPIDS_STREAM_WINDOW_H_

#include <cstddef>
#include <vector>

namespace ldpids {

class SlidingWindowSum {
 public:
  // `w` must be >= 1.
  explicit SlidingWindowSum(std::size_t w);

  // Appends the value for the next timestamp, evicting the value that falls
  // out of the window.
  void Push(double value);

  // Sum of the last min(w, pushes) values.
  double Sum() const { return sum_; }

  // Sum of the last min(w-1, pushes) values, i.e. the window excluding a
  // value about to be pushed — this is what Alg. 1/3 line 7 needs at time t
  // (budget/users spent in timestamps t-w+1 .. t-1).
  double SumLastWMinus1() const;

  std::size_t window() const { return buffer_.size(); }
  std::size_t pushes() const { return pushes_; }

  // Value pushed `age` steps ago (age = 0 is the most recent). Requires
  // age < min(w, pushes).
  double ValueAgo(std::size_t age) const;

 private:
  std::vector<double> buffer_;
  std::size_t next_ = 0;
  std::size_t pushes_ = 0;
  double sum_ = 0.0;
};

}  // namespace ldpids

#endif  // LDPIDS_STREAM_WINDOW_H_
