#include "stream/dataset.h"

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ldpids {

const Counts& StreamDataset::TrueCounts(std::size_t t) const {
  if (t >= length()) throw std::out_of_range("timestamp beyond stream");
  if (count_cache_.size() < length()) {
    count_cache_.resize(length());
    cached_.resize(length(), false);
  }
  if (!cached_[t]) {
    Counts counts(domain(), 0);
    const uint64_t n = num_users();
    for (uint64_t u = 0; u < n; ++u) {
      const uint32_t v = value(u, t);
      if (v >= domain()) throw std::logic_error("dataset value out of domain");
      ++counts[v];
    }
    count_cache_[t] = std::move(counts);
    cached_[t] = true;
  }
  return count_cache_[t];
}

Histogram StreamDataset::TrueFrequencies(std::size_t t) const {
  return CountsToFrequencies(TrueCounts(t), num_users());
}

Counts StreamDataset::SubsetCounts(const std::vector<uint32_t>& users,
                                   std::size_t t) const {
  Counts counts(domain(), 0);
  for (uint32_t u : users) ++counts[value(u, t)];
  return counts;
}

std::vector<Histogram> StreamDataset::TrueStream() const {
  std::vector<Histogram> stream;
  stream.reserve(length());
  for (std::size_t t = 0; t < length(); ++t) {
    stream.push_back(TrueFrequencies(t));
  }
  return stream;
}

}  // namespace ldpids
