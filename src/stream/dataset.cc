#include "stream/dataset.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ldpids {

const Counts& StreamDataset::TrueCounts(std::size_t t) const {
  if (t >= length()) throw std::out_of_range("timestamp beyond stream");
  // Fast path: cache vectors allocated and this slot filled. The acquire
  // loads pair with the release stores below, so the counts written before
  // the flag are visible.
  if (cache_ready_.load(std::memory_order_acquire) &&
      cached_[t].load(std::memory_order_acquire)) {
    return count_cache_[t];
  }
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (!cache_ready_.load(std::memory_order_relaxed)) {
    count_cache_.resize(length());
    cached_ = std::vector<std::atomic<bool>>(length());
    cache_ready_.store(true, std::memory_order_release);
  }
  if (!cached_[t].load(std::memory_order_relaxed)) {
    Counts counts(domain(), 0);
    const uint64_t n = num_users();
    for (uint64_t u = 0; u < n; ++u) {
      const uint32_t v = value(u, t);
      if (v >= domain()) throw std::logic_error("dataset value out of domain");
      ++counts[v];
    }
    count_cache_[t] = std::move(counts);
    cached_[t].store(true, std::memory_order_release);
  }
  return count_cache_[t];
}

Histogram StreamDataset::TrueFrequencies(std::size_t t) const {
  return CountsToFrequencies(TrueCounts(t), num_users());
}

Counts StreamDataset::SubsetCounts(const std::vector<uint32_t>& users,
                                   std::size_t t) const {
  Counts counts;
  SubsetCountsInto(users, t, &counts);
  return counts;
}

void StreamDataset::SubsetCountsInto(const std::vector<uint32_t>& users,
                                     std::size_t t, Counts* out) const {
  out->assign(domain(), 0);
  for (uint32_t u : users) ++(*out)[value(u, t)];
}

std::vector<Histogram> StreamDataset::TrueStream() const {
  std::vector<Histogram> stream;
  stream.reserve(length());
  for (std::size_t t = 0; t < length(); ++t) {
    stream.push_back(TrueFrequencies(t));
  }
  return stream;
}

}  // namespace ldpids
