#include "stream/window.h"

#include <algorithm>
#include <cstddef>
#include <stdexcept>

namespace ldpids {

SlidingWindowSum::SlidingWindowSum(std::size_t w) : buffer_(w, 0.0) {
  if (w == 0) throw std::invalid_argument("window size must be >= 1");
}

void SlidingWindowSum::Push(double value) {
  sum_ -= buffer_[next_];
  buffer_[next_] = value;
  sum_ += value;
  next_ = (next_ + 1) % buffer_.size();
  ++pushes_;
}

double SlidingWindowSum::SumLastWMinus1() const {
  if (pushes_ < buffer_.size()) return sum_;
  // Exclude the oldest in-window value (the one about to be evicted).
  return sum_ - buffer_[next_];
}

double SlidingWindowSum::ValueAgo(std::size_t age) const {
  const std::size_t filled = std::min(pushes_, buffer_.size());
  if (age >= filled) throw std::out_of_range("age beyond window contents");
  const std::size_t idx =
      (next_ + buffer_.size() - 1 - age) % buffer_.size();
  return buffer_[idx];
}

}  // namespace ldpids
