// Stream data model (paper Section 4, Fig. 1).
//
// A `StreamDataset` describes the ground truth of the distributed system:
// `num_users()` users, each holding one categorical value from a domain of
// size `domain()` at every timestamp `t < length()`. LDP-IDS treats streams
// as conceptually infinite; a dataset exposes a finite prefix long enough
// for the experiments (mechanisms never look ahead).
//
// Implementations are *lazy*: `value(user, t)` is a pure function (typically
// counter-based hashing of (seed, user, t)), so population-division
// mechanisms can materialize only the users they sample instead of an
// N x T matrix. True per-timestamp histograms — which require a full pass
// over the population — are computed once on first access and cached.
#ifndef LDPIDS_STREAM_DATASET_H_
#define LDPIDS_STREAM_DATASET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/histogram.h"

namespace ldpids {

class StreamDataset {
 public:
  virtual ~StreamDataset() = default;

  virtual std::string name() const = 0;
  virtual uint64_t num_users() const = 0;
  virtual std::size_t length() const = 0;  // number of timestamps T
  virtual std::size_t domain() const = 0;  // |Omega| = d

  // True value of `user` at timestamp `t`; pure and deterministic.
  virtual uint32_t value(uint64_t user, std::size_t t) const = 0;

  // True per-value counts at timestamp `t` (cached after first call).
  const Counts& TrueCounts(std::size_t t) const;

  // True frequency histogram c_t (counts / N).
  Histogram TrueFrequencies(std::size_t t) const;

  // Counts over an arbitrary subset of users at timestamp `t`; O(subset).
  Counts SubsetCounts(const std::vector<uint32_t>& users,
                      std::size_t t) const;

  // Scratch-buffer variant for hot paths: writes the subset counts into
  // `*out` (resized to domain()), so population-division mechanisms reuse
  // one buffer per run instead of allocating every timestamp.
  void SubsetCountsInto(const std::vector<uint32_t>& users, std::size_t t,
                        Counts* out) const;

  // The full sequence (c_1, ..., c_T) of true frequency histograms.
  std::vector<Histogram> TrueStream() const;

 protected:
  StreamDataset() = default;

 private:
  // Cache of per-timestamp counts, filled on demand. Mutable because caching
  // is not observable behaviour. Thread-safe without by-convention warming:
  // the parallel evaluation engine reads TrueCounts from concurrent
  // repetitions/cells, so first access of a timestamp fills its slot under
  // cache_mu_ while warmed reads take a lock-free fast path (an acquire load
  // of the ready flag, then of the slot flag). The slot vectors are
  // allocated once at full length and never reallocated afterwards.
  mutable std::mutex cache_mu_;
  mutable std::atomic<bool> cache_ready_{false};
  mutable std::vector<Counts> count_cache_;
  mutable std::vector<std::atomic<bool>> cached_;
};

}  // namespace ldpids

#endif  // LDPIDS_STREAM_DATASET_H_
