#include "analysis/topk.h"

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace ldpids {

std::vector<std::size_t> TopKIndices(const Histogram& h, std::size_t k) {
  k = std::min(k, h.size());
  std::vector<std::size_t> idx(h.size());
  std::iota(idx.begin(), idx.end(), 0u);
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      if (h[a] != h[b]) return h[a] > h[b];
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

double TopKPrecision(const Histogram& truth, const Histogram& released,
                     std::size_t k) {
  if (truth.size() != released.size() || truth.empty()) {
    throw std::invalid_argument("histogram domain mismatch");
  }
  k = std::min(k, truth.size());
  if (k == 0) throw std::invalid_argument("k must be >= 1");
  const auto true_top = TopKIndices(truth, k);
  const auto released_top = TopKIndices(released, k);
  std::size_t hits = 0;
  for (std::size_t a : released_top) {
    for (std::size_t b : true_top) {
      if (a == b) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double StreamTopKPrecision(const std::vector<Histogram>& truth,
                           const std::vector<Histogram>& released,
                           std::size_t k) {
  if (truth.size() != released.size() || truth.empty()) {
    throw std::invalid_argument("streams must be non-empty and aligned");
  }
  double total = 0.0;
  for (std::size_t t = 0; t < truth.size(); ++t) {
    total += TopKPrecision(truth[t], released[t], k);
  }
  return total / static_cast<double>(truth.size());
}

double TopKNcr(const Histogram& truth, const Histogram& released,
               std::size_t k) {
  if (truth.size() != released.size() || truth.empty()) {
    throw std::invalid_argument("histogram domain mismatch");
  }
  k = std::min(k, truth.size());
  if (k == 0) throw std::invalid_argument("k must be >= 1");
  const auto true_top = TopKIndices(truth, k);
  // Rank weight of the i-th true heavy hitter is k - i.
  std::unordered_map<std::size_t, double> weight;
  double total_weight = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    weight[true_top[i]] = static_cast<double>(k - i);
    total_weight += static_cast<double>(k - i);
  }
  double recovered = 0.0;
  for (std::size_t v : TopKIndices(released, k)) {
    const auto it = weight.find(v);
    if (it != weight.end()) recovered += it->second;
  }
  return recovered / total_weight;
}

}  // namespace ldpids
