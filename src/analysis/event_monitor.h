// Above-threshold event monitoring over released streams (paper Section
// 7.4): at each timestamp the server checks whether the monitored statistic
// exceeds a threshold delta derived from the stream's dynamic range,
//
//   delta = q * (max_t stat_t - min_t stat_t) + min_t stat_t,  q = 0.75.
//
// Monitored statistic:
//   * binary streams (d = 2): the frequency of value 1 — the paper's
//     "statistics of which are greater than a given threshold";
//   * categorical streams: the maximum bin frequency. (The paper monitors
//     the histogram mean, which is only informative when participation
//     varies per timestamp; with full participation the mean is identically
//     1/d, so we monitor the peak — the same "is something unusual
//     happening" question. Documented in DESIGN.md §4.)
#ifndef LDPIDS_ANALYSIS_EVENT_MONITOR_H_
#define LDPIDS_ANALYSIS_EVENT_MONITOR_H_

#include <vector>

#include "util/histogram.h"

namespace ldpids {

inline constexpr double kDefaultEventQuantile = 0.75;

// Per-timestamp monitored statistic of a stream of histograms.
std::vector<double> MonitoredStatistic(const std::vector<Histogram>& stream);

// delta = q * (max - min) + min over the given statistic series.
double EventThreshold(const std::vector<double>& statistic,
                      double q = kDefaultEventQuantile);

// Ground-truth labels: statistic > delta.
std::vector<bool> EventLabels(const std::vector<double>& statistic,
                              double delta);

// End-to-end helper: labels from the true stream, scores from the released
// stream; returns false (and leaves outputs empty) when the truth has no
// positives or no negatives — the ROC would be undefined.
bool PrepareEventDetection(const std::vector<Histogram>& truth,
                           const std::vector<Histogram>& released,
                           std::vector<double>* scores,
                           std::vector<bool>* labels,
                           double q = kDefaultEventQuantile);

}  // namespace ldpids

#endif  // LDPIDS_ANALYSIS_EVENT_MONITOR_H_
