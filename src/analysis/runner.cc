#include "analysis/runner.h"

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "analysis/event_monitor.h"
#include "analysis/metrics.h"
#include "analysis/roc.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ldpids {

namespace {

std::atomic<uint64_t> g_mechanism_runs{0};

// Everything EvaluateMechanism needs from one repetition. Repetitions are
// fully independent (each derives its seed statelessly from
// (config.seed, rep) inside RunMechanism), so computing these slots is
// embarrassingly parallel; only the reduction order matters.
struct RepetitionMetrics {
  double mre = 0.0;
  double mae = 0.0;
  double mse = 0.0;
  double cfpu = 0.0;
  double publication_rate = 0.0;
  double auc = 0.0;
  bool has_auc = false;
};

RepetitionMetrics OneRepetition(const StreamDataset& data,
                                const std::string& mechanism_name,
                                const MechanismConfig& config, std::size_t rep,
                                const std::vector<Histogram>& truth) {
  const RunResult run = RunMechanism(data, mechanism_name, config, rep);
  RepetitionMetrics m;
  m.mre = MeanRelativeError(truth, run.releases);
  m.mae = MeanAbsoluteError(truth, run.releases);
  m.mse = MeanSquaredError(truth, run.releases);
  m.cfpu = run.Cfpu();
  m.publication_rate = static_cast<double>(run.num_publications) /
                       static_cast<double>(run.timestamps);
  std::vector<double> scores;
  std::vector<bool> labels;
  m.has_auc = PrepareEventDetection(truth, run.releases, &scores, &labels);
  if (m.has_auc) m.auc = RocAuc(scores, labels);
  return m;
}

// Reduces `count` repetition slots starting at `first` in fixed repetition
// order: floating-point accumulation is not associative, so a
// first-finished-first-summed reduction would make the result depend on
// thread scheduling. This order matches the historical serial loop exactly,
// keeping every thread count bit-identical to it.
RunMetrics ReduceInRepetitionOrder(const RepetitionMetrics* first,
                                   std::size_t count) {
  RunMetrics metrics;
  metrics.repetitions = count;
  double auc_total = 0.0;
  std::size_t auc_count = 0;
  for (std::size_t rep = 0; rep < count; ++rep) {
    const RepetitionMetrics& m = first[rep];
    metrics.mre += m.mre;
    metrics.mae += m.mae;
    metrics.mse += m.mse;
    metrics.cfpu += m.cfpu;
    metrics.publication_rate += m.publication_rate;
    if (m.has_auc) {
      auc_total += m.auc;
      ++auc_count;
    }
  }
  const double inv = 1.0 / static_cast<double>(count);
  metrics.mre *= inv;
  metrics.mae *= inv;
  metrics.mse *= inv;
  metrics.cfpu *= inv;
  metrics.publication_rate *= inv;
  metrics.auc = auc_count > 0
                    ? auc_total / static_cast<double>(auc_count)
                    : std::numeric_limits<double>::quiet_NaN();
  return metrics;
}

}  // namespace

uint64_t TotalMechanismRunCount() {
  return g_mechanism_runs.load(std::memory_order_relaxed);
}

RunResult RunMechanism(const StreamDataset& data,
                       const std::string& mechanism_name,
                       MechanismConfig config, uint64_t repetition) {
  // Derive an independent per-repetition seed; HashCounter keeps runs
  // reproducible from (config.seed, repetition) alone.
  config.seed = HashCounter(config.seed, repetition, 0xEC0);
  std::unique_ptr<StreamMechanism> mechanism =
      CreateMechanism(mechanism_name, config, data.num_users());
  g_mechanism_runs.fetch_add(1, std::memory_order_relaxed);
  return mechanism->Run(data);
}

RunMetrics EvaluateMechanism(const StreamDataset& data,
                             const std::string& mechanism_name,
                             const MechanismConfig& config,
                             std::size_t repetitions,
                             std::size_t num_threads) {
  // Computing the truth up front also warms the dataset's per-timestamp
  // count cache, so the parallel repetitions below only ever read it.
  const std::vector<Histogram> truth = data.TrueStream();
  std::vector<RepetitionMetrics> per_rep(repetitions);
  ParallelFor(num_threads, repetitions, [&](std::size_t rep) {
    per_rep[rep] = OneRepetition(data, mechanism_name, config, rep, truth);
  });
  return ReduceInRepetitionOrder(per_rep.data(), repetitions);
}

std::vector<RunMetrics> SweepMechanism(
    const StreamDataset& data, const std::string& mechanism_name,
    const std::vector<MechanismConfig>& configs, std::size_t repetitions,
    std::size_t num_threads) {
  // Fan out over the whole (config x repetition) grid, not just the
  // repetitions of one cell at a time: at small repetition counts this is
  // what keeps every engine lane busy. Slots are keyed by (config, rep) and
  // each config's slice reduces in repetition order, so the output is
  // bit-identical to evaluating the configs one by one, at any thread count.
  const std::vector<Histogram> truth = data.TrueStream();
  std::vector<RepetitionMetrics> grid(configs.size() * repetitions);
  ParallelFor(num_threads, grid.size(), [&](std::size_t i) {
    const std::size_t config_index = i / repetitions;
    const std::size_t rep = i % repetitions;
    grid[i] =
        OneRepetition(data, mechanism_name, configs[config_index], rep, truth);
  });
  std::vector<RunMetrics> out;
  out.reserve(configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    out.push_back(
        ReduceInRepetitionOrder(grid.data() + c * repetitions, repetitions));
  }
  return out;
}

}  // namespace ldpids
