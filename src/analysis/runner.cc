#include "analysis/runner.h"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "analysis/event_monitor.h"
#include "analysis/metrics.h"
#include "analysis/roc.h"
#include "util/rng.h"

namespace ldpids {

RunResult RunMechanism(const StreamDataset& data,
                       const std::string& mechanism_name,
                       MechanismConfig config, uint64_t repetition) {
  // Derive an independent per-repetition seed; HashCounter keeps runs
  // reproducible from (config.seed, repetition) alone.
  config.seed = HashCounter(config.seed, repetition, 0xEC0);
  std::unique_ptr<StreamMechanism> mechanism =
      CreateMechanism(mechanism_name, config, data.num_users());
  return mechanism->Run(data);
}

RunMetrics EvaluateMechanism(const StreamDataset& data,
                             const std::string& mechanism_name,
                             const MechanismConfig& config,
                             std::size_t repetitions) {
  const std::vector<Histogram> truth = data.TrueStream();
  RunMetrics metrics;
  metrics.repetitions = repetitions;
  double auc_total = 0.0;
  std::size_t auc_count = 0;
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    const RunResult run = RunMechanism(data, mechanism_name, config, rep);
    metrics.mre += MeanRelativeError(truth, run.releases);
    metrics.mae += MeanAbsoluteError(truth, run.releases);
    metrics.mse += MeanSquaredError(truth, run.releases);
    metrics.cfpu += run.Cfpu();
    metrics.publication_rate += static_cast<double>(run.num_publications) /
                                static_cast<double>(run.timestamps);
    std::vector<double> scores;
    std::vector<bool> labels;
    if (PrepareEventDetection(truth, run.releases, &scores, &labels)) {
      auc_total += RocAuc(scores, labels);
      ++auc_count;
    }
  }
  const double inv = 1.0 / static_cast<double>(repetitions);
  metrics.mre *= inv;
  metrics.mae *= inv;
  metrics.mse *= inv;
  metrics.cfpu *= inv;
  metrics.publication_rate *= inv;
  metrics.auc = auc_count > 0
                    ? auc_total / static_cast<double>(auc_count)
                    : std::numeric_limits<double>::quiet_NaN();
  return metrics;
}

std::vector<RunMetrics> SweepMechanism(
    const StreamDataset& data, const std::string& mechanism_name,
    const std::vector<MechanismConfig>& configs, std::size_t repetitions) {
  std::vector<RunMetrics> out;
  out.reserve(configs.size());
  for (const MechanismConfig& config : configs) {
    out.push_back(EvaluateMechanism(data, mechanism_name, config, repetitions));
  }
  return out;
}

}  // namespace ldpids
