// FAST-style Kalman smoothing of released streams (paper Remark 3: the
// population-division framework composes with filtering methods such as
// FAST (Fan & Xiong, TKDE 2014); this module provides the filtering half).
//
// Each histogram bin is tracked by an independent scalar Kalman filter with
// a random-walk state model:
//
//   predict:  x <- x,          P <- P + Q          (every timestamp)
//   correct:  K = P / (P + R), x <- x + K (z - x), P <- (1 - K) P
//                                                  (publication timestamps)
//
// Q is the per-step process variance (how fast the true stream moves) and R
// the measurement variance of the publication — exactly the FO's V(eps, n),
// which the mechanisms know analytically. Smoothing is pure post-processing
// of the release sequence, so it is privacy-free.
#ifndef LDPIDS_ANALYSIS_SMOOTHER_H_
#define LDPIDS_ANALYSIS_SMOOTHER_H_

#include <cstddef>
#include <vector>

#include "core/mechanism.h"
#include "util/histogram.h"

namespace ldpids {

class StreamSmoother {
 public:
  // `domain` bins, `process_variance` = Q.
  StreamSmoother(std::size_t domain, double process_variance);

  // Advances one timestamp. If `published` is true, `release` is treated as
  // a fresh measurement with variance `measurement_variance`; otherwise the
  // filter only predicts (the release carries no new information). Returns
  // the filtered histogram.
  Histogram Update(const Histogram& release, bool published,
                   double measurement_variance);

  // Current posterior variance of one bin (same for all bins by symmetry).
  double posterior_variance() const { return p_; }

 private:
  double q_;
  double p_;
  bool initialized_ = false;
  Histogram state_;
};

// Applies a StreamSmoother across a whole run: measurement variance is
// `measurement_variance` at every published timestamp. Returns the smoothed
// release sequence (same length as run.releases).
std::vector<Histogram> SmoothRun(const RunResult& run,
                                 double process_variance,
                                 double measurement_variance);

// Estimates a reasonable process variance from the true stream (mean
// per-bin squared step); handy for benches and tests. In deployment this is
// a tuning knob, as in FAST.
double EstimateProcessVariance(const std::vector<Histogram>& stream);

}  // namespace ldpids

#endif  // LDPIDS_ANALYSIS_SMOOTHER_H_
