#include "analysis/roc.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace ldpids {

std::vector<RocPoint> ComputeRoc(const std::vector<double>& scores,
                                 const std::vector<bool>& labels) {
  if (scores.size() != labels.size() || scores.empty()) {
    throw std::invalid_argument("scores/labels must be non-empty and aligned");
  }
  std::size_t positives = 0;
  for (bool b : labels) positives += b ? 1 : 0;
  const std::size_t negatives = labels.size() - positives;
  if (positives == 0 || negatives == 0) {
    throw std::invalid_argument(
        "ROC needs at least one positive and one negative label");
  }

  // Sort indices by decreasing score; walk thresholds from +inf downwards.
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  std::vector<RocPoint> curve;
  curve.push_back({0.0, 0.0, std::numeric_limits<double>::infinity()});
  std::size_t tp = 0;
  std::size_t fp = 0;
  for (std::size_t i = 0; i < order.size();) {
    // Consume all samples tied at this score before emitting a point.
    const double score = scores[order[i]];
    while (i < order.size() && scores[order[i]] == score) {
      if (labels[order[i]]) ++tp;
      else ++fp;
      ++i;
    }
    curve.push_back({static_cast<double>(fp) / static_cast<double>(negatives),
                     static_cast<double>(tp) / static_cast<double>(positives),
                     score});
  }
  return curve;
}

double RocAuc(const std::vector<double>& scores,
              const std::vector<bool>& labels) {
  const std::vector<RocPoint> curve = ComputeRoc(scores, labels);
  double auc = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double dx =
        curve[i].false_positive_rate - curve[i - 1].false_positive_rate;
    const double avg_y =
        (curve[i].true_positive_rate + curve[i - 1].true_positive_rate) / 2.0;
    auc += dx * avg_y;
  }
  return auc;
}

double TprAtFpr(const std::vector<RocPoint>& curve, double fpr) {
  if (curve.empty()) throw std::invalid_argument("empty ROC curve");
  for (std::size_t i = 1; i < curve.size(); ++i) {
    if (curve[i].false_positive_rate >= fpr) {
      const double x0 = curve[i - 1].false_positive_rate;
      const double x1 = curve[i].false_positive_rate;
      const double y0 = curve[i - 1].true_positive_rate;
      const double y1 = curve[i].true_positive_rate;
      if (x1 == x0) return std::max(y0, y1);
      const double alpha = (fpr - x0) / (x1 - x0);
      return y0 + alpha * (y1 - y0);
    }
  }
  return curve.back().true_positive_rate;
}

}  // namespace ldpids
