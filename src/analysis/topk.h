// Top-k utilities over released histograms — heavy-hitter tracking, the
// companion query to frequency release in the LDP literature (Qin et al.
// CCS'16, Wang et al. TDSC'19). The server often cares less about the full
// histogram than about *which* values currently dominate; these helpers
// score how faithfully a released stream preserves that.
#ifndef LDPIDS_ANALYSIS_TOPK_H_
#define LDPIDS_ANALYSIS_TOPK_H_

#include <cstddef>
#include <vector>

#include "util/histogram.h"

namespace ldpids {

// Indices of the k largest bins, in decreasing-frequency order. Ties break
// towards the smaller index for determinism. k is clamped to d.
std::vector<std::size_t> TopKIndices(const Histogram& h, std::size_t k);

// |TopK(truth) intersect TopK(released)| / k — the standard top-k accuracy.
double TopKPrecision(const Histogram& truth, const Histogram& released,
                     std::size_t k);

// Mean top-k precision across a whole stream.
double StreamTopKPrecision(const std::vector<Histogram>& truth,
                           const std::vector<Histogram>& released,
                           std::size_t k);

// Normalized Cumulative Rank (NCR): weights the i-th true heavy hitter by
// (k - i) and scores how much of the total weight the released top-k
// recovers — 1.0 is a perfect ranked match (Wang et al., TDSC'19).
double TopKNcr(const Histogram& truth, const Histogram& released,
               std::size_t k);

}  // namespace ldpids

#endif  // LDPIDS_ANALYSIS_TOPK_H_
