// ROC curves for binary detection from real-valued scores.
//
// Used by the event-monitoring evaluation (paper Section 7.4, Fig. 7): the
// ground-truth labels mark timestamps whose true statistic exceeds the event
// threshold delta; the scores are the released (noisy) statistics. Sweeping
// the decision threshold over the scores traces the ROC curve.
#ifndef LDPIDS_ANALYSIS_ROC_H_
#define LDPIDS_ANALYSIS_ROC_H_

#include <vector>

namespace ldpids {

struct RocPoint {
  double false_positive_rate = 0.0;
  double true_positive_rate = 0.0;
  double threshold = 0.0;  // classify positive when score >= threshold
};

// Full ROC curve (one point per distinct score, plus the (0,0) and (1,1)
// endpoints), ordered by increasing FPR. Requires at least one positive and
// one negative label; throws std::invalid_argument otherwise.
std::vector<RocPoint> ComputeRoc(const std::vector<double>& scores,
                                 const std::vector<bool>& labels);

// Area under the ROC curve by trapezoidal integration. Equivalently the
// Mann-Whitney probability that a random positive outscores a random
// negative.
double RocAuc(const std::vector<double>& scores,
              const std::vector<bool>& labels);

// TPR at (approximately) the requested FPR, linearly interpolated along the
// curve — handy for tabular "detection rate at 1% false alarms" reporting.
double TprAtFpr(const std::vector<RocPoint>& curve, double fpr);

}  // namespace ldpids

#endif  // LDPIDS_ANALYSIS_ROC_H_
