// Experiment orchestration: runs mechanisms over datasets with repetitions
// and aggregates the metrics the paper reports. The bench binaries are thin
// wrappers around these helpers.
#ifndef LDPIDS_ANALYSIS_RUNNER_H_
#define LDPIDS_ANALYSIS_RUNNER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/factory.h"
#include "core/mechanism.h"
#include "stream/dataset.h"

namespace ldpids {

// Aggregated metrics of one (mechanism, dataset, config) cell, averaged
// over repetitions with distinct mechanism seeds.
struct RunMetrics {
  double mre = 0.0;
  double mae = 0.0;
  double mse = 0.0;
  double cfpu = 0.0;
  double publication_rate = 0.0;  // publications / timestamps
  double auc = 0.0;               // event-detection AUC; NaN if undefined
  std::size_t repetitions = 0;
};

// Runs `mechanism_name` on `data` once with the given config (the config's
// seed is combined with `repetition` so repeated calls are independent).
RunResult RunMechanism(const StreamDataset& data,
                       const std::string& mechanism_name,
                       MechanismConfig config, uint64_t repetition = 0);

// Total number of RunMechanism invocations since process start, across all
// threads. The bench harness samples this around a sweep to record
// mechanism-run throughput in the BENCH_*.json trajectory files.
uint64_t TotalMechanismRunCount();

// Runs `repetitions` independent runs and averages MRE/MAE/MSE/CFPU/AUC.
// The true stream is computed once and shared across repetitions.
//
// `num_threads` > 1 fans the repetitions out across a thread pool. Each
// repetition's seed derives statelessly from (config.seed, rep) and the
// per-repetition metrics are reduced in fixed repetition order, so the
// result is bit-identical for every thread count (including 1): threads
// change wall-clock time, never numbers.
RunMetrics EvaluateMechanism(const StreamDataset& data,
                             const std::string& mechanism_name,
                             const MechanismConfig& config,
                             std::size_t repetitions = 3,
                             std::size_t num_threads = 1);

// Sweeps one mechanism over several configs (e.g. varying epsilon) and
// returns the metric per config; a convenience for figure series.
// `num_threads` parallelizes the whole (config x repetition) grid — so the
// engine stays busy even at repetitions = 1 — with the same bit-identical
// guarantee as EvaluateMechanism.
std::vector<RunMetrics> SweepMechanism(const StreamDataset& data,
                                       const std::string& mechanism_name,
                                       const std::vector<MechanismConfig>&
                                           configs,
                                       std::size_t repetitions = 3,
                                       std::size_t num_threads = 1);

}  // namespace ldpids

#endif  // LDPIDS_ANALYSIS_RUNNER_H_
