#include "analysis/postprocess.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace ldpids {

Histogram ProjectToSimplex(const Histogram& h) {
  // Duchi, Shalev-Shwartz, Singer, Chandra (ICML 2008): sort descending,
  // find the largest k with u_k - (cumsum_k - 1)/k > 0, shift by that theta
  // and clip.
  if (h.empty()) return h;
  Histogram sorted = h;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  double cumsum = 0.0;
  double theta = 0.0;
  std::size_t rho = 0;
  for (std::size_t k = 0; k < sorted.size(); ++k) {
    cumsum += sorted[k];
    const double candidate =
        (cumsum - 1.0) / static_cast<double>(k + 1);
    if (sorted[k] - candidate > 0.0) {
      rho = k + 1;
      theta = candidate;
    }
  }
  if (rho == 0) {
    // All mass below the threshold (degenerate); fall back to uniform.
    return Histogram(h.size(), 1.0 / static_cast<double>(h.size()));
  }
  Histogram out(h.size());
  for (std::size_t k = 0; k < h.size(); ++k) {
    out[k] = std::max(h[k] - theta, 0.0);
  }
  return out;
}

Histogram NormSub(const Histogram& h) {
  // Iterate: shift the currently-positive support by delta so the total
  // hits 1, clip new negatives, repeat. Converges in <= d rounds because
  // the support only shrinks.
  if (h.empty()) return h;
  Histogram out = h;
  std::vector<bool> zeroed(h.size(), false);
  for (std::size_t round = 0; round < h.size() + 1; ++round) {
    double total = 0.0;
    std::size_t support = 0;
    for (std::size_t k = 0; k < out.size(); ++k) {
      if (!zeroed[k]) {
        total += out[k];
        ++support;
      }
    }
    if (support == 0) {
      return Histogram(h.size(), 1.0 / static_cast<double>(h.size()));
    }
    const double delta = (1.0 - total) / static_cast<double>(support);
    bool changed = false;
    for (std::size_t k = 0; k < out.size(); ++k) {
      if (zeroed[k]) continue;
      out[k] += delta;
      if (out[k] < 0.0) {
        out[k] = 0.0;
        zeroed[k] = true;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return out;
}

Histogram ApplyPostProcess(const Histogram& h, PostProcess mode) {
  switch (mode) {
    case PostProcess::kNone:
      return h;
    case PostProcess::kClamp:
      return ClampToUnit(h);
    case PostProcess::kSimplex:
      return ProjectToSimplex(h);
    case PostProcess::kNormSub:
      return NormSub(h);
  }
  throw std::logic_error("unreachable post-process mode");
}

PostProcess ParsePostProcess(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "none" || lower.empty()) return PostProcess::kNone;
  if (lower == "clamp") return PostProcess::kClamp;
  if (lower == "simplex") return PostProcess::kSimplex;
  if (lower == "normsub" || lower == "norm-sub") return PostProcess::kNormSub;
  throw std::invalid_argument("unknown post-process mode: " + name);
}

std::string PostProcessName(PostProcess mode) {
  switch (mode) {
    case PostProcess::kNone: return "none";
    case PostProcess::kClamp: return "clamp";
    case PostProcess::kSimplex: return "simplex";
    case PostProcess::kNormSub: return "normsub";
  }
  return "?";
}

}  // namespace ldpids
