#include "analysis/smoother.h"

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace ldpids {

StreamSmoother::StreamSmoother(std::size_t domain, double process_variance)
    : q_(process_variance), p_(0.0), state_(domain, 0.0) {
  if (domain == 0) throw std::invalid_argument("domain must be non-empty");
  if (process_variance < 0.0) {
    throw std::invalid_argument("process variance must be >= 0");
  }
}

Histogram StreamSmoother::Update(const Histogram& release, bool published,
                                 double measurement_variance) {
  if (release.size() != state_.size()) {
    throw std::invalid_argument("smoother domain mismatch");
  }
  if (!initialized_) {
    // First measurement initializes the state exactly.
    if (published) {
      state_ = release;
      p_ = measurement_variance;
      initialized_ = true;
    }
    return state_;
  }
  // Predict.
  p_ += q_;
  // Correct on fresh measurements only; approximations repeat old
  // information the filter already has.
  if (published) {
    if (measurement_variance < 0.0) {
      throw std::invalid_argument("measurement variance must be >= 0");
    }
    const double gain = p_ / (p_ + measurement_variance);
    for (std::size_t k = 0; k < state_.size(); ++k) {
      state_[k] += gain * (release[k] - state_[k]);
    }
    p_ *= (1.0 - gain);
  }
  return state_;
}

std::vector<Histogram> SmoothRun(const RunResult& run,
                                 double process_variance,
                                 double measurement_variance) {
  if (run.releases.empty()) return {};
  StreamSmoother smoother(run.releases.front().size(), process_variance);
  std::vector<Histogram> out;
  out.reserve(run.releases.size());
  for (std::size_t t = 0; t < run.releases.size(); ++t) {
    out.push_back(smoother.Update(run.releases[t], run.published[t],
                                  measurement_variance));
  }
  return out;
}

double EstimateProcessVariance(const std::vector<Histogram>& stream) {
  if (stream.size() < 2) return 0.0;
  double total = 0.0;
  std::size_t cells = 0;
  for (std::size_t t = 1; t < stream.size(); ++t) {
    for (std::size_t k = 0; k < stream[t].size(); ++k) {
      const double step = stream[t][k] - stream[t - 1][k];
      total += step * step;
      ++cells;
    }
  }
  return total / static_cast<double>(cells);
}

}  // namespace ldpids
