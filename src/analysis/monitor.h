// Online monitors over released streams.
//
// `ThresholdMonitor` is the deployment-shaped version of the evaluation in
// Section 7.4: it consumes the released statistic one timestamp at a time
// and emits enter/exit events against a threshold, with optional hysteresis
// so LDP noise near the boundary does not flap alerts.
//
// `CusumDetector` detects sustained changes of the statistic's level (the
// classic two-sided CUSUM) — useful on population-division releases, whose
// per-timestamp noise is small enough for sequential change detection to
// work, unlike budget-division releases (see bench_fig7_event_roc).
#ifndef LDPIDS_ANALYSIS_MONITOR_H_
#define LDPIDS_ANALYSIS_MONITOR_H_

#include <cstddef>
#include <vector>

namespace ldpids {

struct MonitorEvent {
  std::size_t timestamp = 0;
  bool entered = false;  // true = went above threshold, false = came back
  double value = 0.0;
};

class ThresholdMonitor {
 public:
  // Alerts when the statistic exceeds `threshold`; the alert clears only
  // when it falls below `threshold - hysteresis` (hysteresis >= 0).
  ThresholdMonitor(double threshold, double hysteresis = 0.0);

  // Feeds the statistic for the next timestamp; returns the emitted events
  // (empty, or one enter/exit).
  std::vector<MonitorEvent> Update(double value);

  bool active() const { return active_; }
  std::size_t timestamps() const { return t_; }

 private:
  double threshold_;
  double hysteresis_;
  bool active_ = false;
  std::size_t t_ = 0;
};

class CusumDetector {
 public:
  // Two-sided CUSUM around `reference` with slack `drift` (per-step
  // allowance) and decision threshold `threshold`. After a detection the
  // statistic resets and the reference re-centres on the current value.
  CusumDetector(double reference, double drift, double threshold);

  // Returns true if a change (in either direction) is declared at this
  // step.
  bool Update(double value);

  double positive_statistic() const { return s_pos_; }
  double negative_statistic() const { return s_neg_; }
  double reference() const { return reference_; }

 private:
  double reference_;
  double drift_;
  double threshold_;
  double s_pos_ = 0.0;
  double s_neg_ = 0.0;
};

}  // namespace ldpids

#endif  // LDPIDS_ANALYSIS_MONITOR_H_
