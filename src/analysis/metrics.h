// Utility metrics between the true stream (c_1..c_T) and a released stream
// (r_1..r_T), matching Section 7.1.4.
//
// The paper reports MRE (mean relative error) without giving a formula; we
// use the standard per-bin relative error with a floored denominator,
//
//   MRE = (1 / (T d)) sum_{t,k} |r_t[k] - c_t[k]| / max(c_t[k], floor),
//
// which reproduces the paper's magnitudes (e.g. LBU ~0.5 at eps=1 on LNS)
// and, more importantly, its orderings. MAE and MSE are also provided; MSE
// is the quantity the utility analysis in Sections 5.4.2/6.3.2 bounds.
#ifndef LDPIDS_ANALYSIS_METRICS_H_
#define LDPIDS_ANALYSIS_METRICS_H_

#include <vector>

#include "util/histogram.h"

namespace ldpids {

inline constexpr double kDefaultMreFloor = 0.01;

// Mean relative error; `floor` guards near-empty bins.
double MeanRelativeError(const std::vector<Histogram>& truth,
                         const std::vector<Histogram>& released,
                         double floor = kDefaultMreFloor);

// Mean absolute error per bin: (1/(T d)) sum |r - c|.
double MeanAbsoluteError(const std::vector<Histogram>& truth,
                         const std::vector<Histogram>& released);

// Mean squared error per bin: (1/(T d)) sum (r - c)^2.
double MeanSquaredError(const std::vector<Histogram>& truth,
                        const std::vector<Histogram>& released);

}  // namespace ldpids

#endif  // LDPIDS_ANALYSIS_METRICS_H_
