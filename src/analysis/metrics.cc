#include "analysis/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace ldpids {

namespace {
void CheckAligned(const std::vector<Histogram>& truth,
                  const std::vector<Histogram>& released) {
  if (truth.size() != released.size() || truth.empty()) {
    throw std::invalid_argument("streams must be non-empty and equal-length");
  }
  for (std::size_t t = 0; t < truth.size(); ++t) {
    if (truth[t].size() != released[t].size()) {
      throw std::invalid_argument("histogram domain mismatch");
    }
  }
}
}  // namespace

double MeanRelativeError(const std::vector<Histogram>& truth,
                         const std::vector<Histogram>& released,
                         double floor) {
  CheckAligned(truth, released);
  double total = 0.0;
  std::size_t cells = 0;
  for (std::size_t t = 0; t < truth.size(); ++t) {
    for (std::size_t k = 0; k < truth[t].size(); ++k) {
      const double denom = std::max(truth[t][k], floor);
      total += std::fabs(released[t][k] - truth[t][k]) / denom;
      ++cells;
    }
  }
  return total / static_cast<double>(cells);
}

double MeanAbsoluteError(const std::vector<Histogram>& truth,
                         const std::vector<Histogram>& released) {
  CheckAligned(truth, released);
  double total = 0.0;
  std::size_t cells = 0;
  for (std::size_t t = 0; t < truth.size(); ++t) {
    for (std::size_t k = 0; k < truth[t].size(); ++k) {
      total += std::fabs(released[t][k] - truth[t][k]);
      ++cells;
    }
  }
  return total / static_cast<double>(cells);
}

double MeanSquaredError(const std::vector<Histogram>& truth,
                        const std::vector<Histogram>& released) {
  CheckAligned(truth, released);
  double total = 0.0;
  std::size_t cells = 0;
  for (std::size_t t = 0; t < truth.size(); ++t) {
    for (std::size_t k = 0; k < truth[t].size(); ++k) {
      const double diff = released[t][k] - truth[t][k];
      total += diff * diff;
      ++cells;
    }
  }
  return total / static_cast<double>(cells);
}

}  // namespace ldpids
