#include "analysis/monitor.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace ldpids {

ThresholdMonitor::ThresholdMonitor(double threshold, double hysteresis)
    : threshold_(threshold), hysteresis_(hysteresis) {
  if (hysteresis < 0.0) {
    throw std::invalid_argument("hysteresis must be >= 0");
  }
}

std::vector<MonitorEvent> ThresholdMonitor::Update(double value) {
  std::vector<MonitorEvent> events;
  if (!active_ && value > threshold_) {
    active_ = true;
    events.push_back({t_, true, value});
  } else if (active_ && value < threshold_ - hysteresis_) {
    active_ = false;
    events.push_back({t_, false, value});
  }
  ++t_;
  return events;
}

CusumDetector::CusumDetector(double reference, double drift, double threshold)
    : reference_(reference), drift_(drift), threshold_(threshold) {
  if (drift < 0.0) throw std::invalid_argument("drift must be >= 0");
  if (threshold <= 0.0) {
    throw std::invalid_argument("threshold must be > 0");
  }
}

bool CusumDetector::Update(double value) {
  const double deviation = value - reference_;
  s_pos_ = std::max(0.0, s_pos_ + deviation - drift_);
  s_neg_ = std::max(0.0, s_neg_ - deviation - drift_);
  if (s_pos_ > threshold_ || s_neg_ > threshold_) {
    s_pos_ = 0.0;
    s_neg_ = 0.0;
    reference_ = value;  // re-centre after detection
    return true;
  }
  return false;
}

}  // namespace ldpids
