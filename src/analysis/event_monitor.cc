#include "analysis/event_monitor.h"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ldpids {

std::vector<double> MonitoredStatistic(const std::vector<Histogram>& stream) {
  if (stream.empty()) throw std::invalid_argument("empty stream");
  std::vector<double> stat;
  stat.reserve(stream.size());
  const bool binary = stream.front().size() == 2;
  for (const Histogram& h : stream) {
    if (binary) {
      stat.push_back(h[1]);
    } else {
      stat.push_back(*std::max_element(h.begin(), h.end()));
    }
  }
  return stat;
}

double EventThreshold(const std::vector<double>& statistic, double q) {
  if (statistic.empty()) throw std::invalid_argument("empty statistic");
  const auto [lo, hi] =
      std::minmax_element(statistic.begin(), statistic.end());
  return q * (*hi - *lo) + *lo;
}

std::vector<bool> EventLabels(const std::vector<double>& statistic,
                              double delta) {
  std::vector<bool> labels;
  labels.reserve(statistic.size());
  for (double s : statistic) labels.push_back(s > delta);
  return labels;
}

bool PrepareEventDetection(const std::vector<Histogram>& truth,
                           const std::vector<Histogram>& released,
                           std::vector<double>* scores,
                           std::vector<bool>* labels, double q) {
  if (truth.size() != released.size() || truth.empty()) {
    throw std::invalid_argument("streams must be non-empty and aligned");
  }
  const std::vector<double> true_stat = MonitoredStatistic(truth);
  const double delta = EventThreshold(true_stat, q);
  std::vector<bool> true_labels = EventLabels(true_stat, delta);
  std::size_t positives = 0;
  for (bool b : true_labels) positives += b ? 1 : 0;
  if (positives == 0 || positives == true_labels.size()) {
    scores->clear();
    labels->clear();
    return false;
  }
  *scores = MonitoredStatistic(released);
  *labels = std::move(true_labels);
  return true;
}

}  // namespace ldpids
