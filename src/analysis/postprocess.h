// Release post-processing (consistency enforcement).
//
// Unbiased LDP estimates routinely leave the probability simplex (negative
// bins, sums != 1). Any data-independent transformation of the release is
// privacy-free by the post-processing theorem, and enforcing consistency is
// known to reduce error (Wang et al., "Consistent frequency estimation...";
// CALM). Three standard options are provided and can be attached to any
// mechanism via MechanismConfig::post_process:
//
//   kClamp   — clip each bin to [0, 1] (cheap, biased low on totals);
//   kSimplex — Euclidean projection onto the probability simplex
//              (Duchi et al. 2008, O(d log d));
//   kNormSub — the norm-sub estimator: shift all bins by a common delta and
//              clip negatives so the result is non-negative and sums to 1
//              (the recommended choice in the consistency literature).
#ifndef LDPIDS_ANALYSIS_POSTPROCESS_H_
#define LDPIDS_ANALYSIS_POSTPROCESS_H_

#include <string>

#include "util/histogram.h"

namespace ldpids {

enum class PostProcess {
  kNone,
  kClamp,
  kSimplex,
  kNormSub,
};

// Euclidean projection of `h` onto {x : x >= 0, sum x = 1}.
Histogram ProjectToSimplex(const Histogram& h);

// Norm-sub: find delta such that sum_k max(h[k] + delta, 0) = 1 and return
// the clipped-shifted histogram.
Histogram NormSub(const Histogram& h);

// Applies the selected transformation (kNone returns the input unchanged).
Histogram ApplyPostProcess(const Histogram& h, PostProcess mode);

// Parses "none" | "clamp" | "simplex" | "normsub" (case-insensitive);
// throws std::invalid_argument otherwise.
PostProcess ParsePostProcess(const std::string& name);

// Display name of a mode.
std::string PostProcessName(PostProcess mode);

}  // namespace ldpids

#endif  // LDPIDS_ANALYSIS_POSTPROCESS_H_
