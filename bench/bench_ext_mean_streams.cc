// Extension bench: w-event LDP mean release over numeric streams (the
// paper's footnote-2 generalization, implemented in src/mean).
//
// Prints MSE and CFPU of MeanLBU / MeanLPU / MeanLPA across eps and w on a
// drifting numeric stream. Expected shape: the population-division gap of
// Theorem 6.1 carries over verbatim — MeanLPU/MeanLPA beat MeanLBU by a
// widening factor as w grows, and MeanLPA pays the least communication.
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "mean/mean_stream.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace {

using namespace ldpids;

struct MeanMetrics {
  double mse = 0.0;
  double cfpu = 0.0;
};

MeanMetrics Evaluate(const NumericStreamDataset& data,
                     const std::string& name, double eps, std::size_t w,
                     int reps, std::size_t threads) {
  // Warm the lazily-cached true means before fanning out, so the parallel
  // repetitions below only ever read the cache.
  for (std::size_t t = 0; t < data.length(); ++t) data.TrueMean(t);
  const std::vector<MeanMetrics> per_rep = bench::ParallelReps<MeanMetrics>(
      threads, reps, [&](std::size_t rep) {
        auto m = CreateMeanMechanism(name, eps, w, data.num_users(),
                                     1000 + static_cast<uint64_t>(rep));
        const MeanRunResult run = m->Run(data);
        double mse = 0.0;
        for (std::size_t t = 0; t < run.releases.size(); ++t) {
          const double diff = run.releases[t] - data.TrueMean(t);
          mse += diff * diff;
        }
        return MeanMetrics{mse / static_cast<double>(run.releases.size()),
                           run.Cfpu()};
      });
  // Fixed-order reduction keeps the table identical for every thread count.
  MeanMetrics metrics;
  for (const MeanMetrics& r : per_rep) {
    metrics.mse += r.mse;
    metrics.cfpu += r.cfpu;
  }
  metrics.mse /= reps;
  metrics.cfpu /= reps;
  return metrics;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::string kTitle =
      "Extension — w-event LDP mean estimation";
  if (bench::HandleHelp(flags, kTitle)) {
    return 0;
  }
  const double scale = flags.GetDouble("scale", 0.3);
  const int reps = bench::RepsFlag(flags, 2);
  const std::size_t threads = bench::BenchThreads(flags);
  bench::PrintHeader(kTitle, scale);
  bench::ThroughputRecorder throughput(threads);

  const auto data = MakeNumericSineDataset(bench::ScaledUsers(scale, 100000),
                                           bench::ScaledLength(scale, 400),
                                           /*period_b=*/0.05);

  std::printf("MSE vs eps (w=20)\n");
  TablePrinter eps_table({"method", "eps=0.5", "eps=1.0", "eps=2.0"});
  for (const std::string& name : AllMeanMechanismNames()) {
    std::vector<double> row;
    for (double eps : {0.5, 1.0, 2.0}) {
      row.push_back(Evaluate(*data, name, eps, 20, reps, threads).mse);
    }
    eps_table.AddRow(name, row, 6);
  }
  eps_table.Print(std::cout);

  std::printf("\nMSE vs w (eps=1)\n");
  TablePrinter w_table({"method", "w=10", "w=20", "w=40"});
  for (const std::string& name : AllMeanMechanismNames()) {
    std::vector<double> row;
    for (std::size_t w : {10u, 20u, 40u}) {
      row.push_back(Evaluate(*data, name, 1.0, w, reps, threads).mse);
    }
    w_table.AddRow(name, row, 6);
  }
  w_table.Print(std::cout);

  std::printf("\nCFPU (eps=1, w=20)\n");
  TablePrinter c_table({"method", "CFPU"});
  for (const std::string& name : AllMeanMechanismNames()) {
    c_table.AddRow(name, {Evaluate(*data, name, 1.0, 20, reps, threads).cfpu}, 4);
  }
  c_table.Print(std::cout);
  // Mean mechanisms bypass RunMechanism; count them explicitly:
  // 3 methods x (3 eps + 3 w + 1 cfpu) cells x reps runs.
  throughput.AddRuns(static_cast<uint64_t>(reps) * 3 * 7);
  throughput.Print();
  return 0;
}
