// Serving-layer throughput: wire-report ingestion rate (reports/sec) as a
// function of shard and thread counts, plus end-to-end multi-session
// serving via StreamServer.
//
// Two sections:
//   1. Raw sharded ingestion — one pre-produced round of wire packets per
//      oracle is pushed through ReportRouter::IngestBatch at several
//      (shards x threads) configurations; reports/sec covers decode,
//      validation, sketch folding and the final shard merge.
//   2. End-to-end serving — a StreamServer advances concurrent mechanism
//      sessions (clients -> packets -> sharded ingest -> w-event release),
//      measuring releases/sec and reports/sec of the whole path.
//
// Flags: --scale (population multiplier), --reps (timing repetitions; best
// rep is reported), --threads, --fo, --csv, --help. The "[throughput]"
// line records the peak ingestion configuration for BENCH_*.json.
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/factory.h"
#include "core/mechanism.h"
#include "fo/frequency_oracle.h"
#include "fo/wire.h"
#include "service/client_fleet.h"
#include "service/ingest.h"
#include "service/session.h"
#include "service/stream_server.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/thread_pool.h"

namespace {

using namespace ldpids;
using namespace ldpids::bench;
using service::ClientFleet;
using service::IngestStats;
using service::MechanismSession;
using service::ReportRouter;
using service::RoundRequest;
using service::SessionOptions;
using service::StreamServer;

// --domain flag (default 64, the historical shape); d=1024 is the columnar
// ingest acceptance configuration recorded in BENCH_ingest_columnar.json.
std::size_t g_domain = 64;
constexpr double kEpsilon = 1.0;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

uint32_t TruthValue(uint64_t user, std::size_t t) {
  return static_cast<uint32_t>(HashCounter(13, user, t) % g_domain);
}

struct IngestCell {
  std::string oracle;
  std::size_t shards = 0;
  std::size_t threads = 0;
  uint64_t reports = 0;
  double reports_per_s = 0.0;
};

// One pre-produced round pushed through the router `reps` times; the best
// rep is recorded (timing noise only shrinks the number).
IngestCell BenchIngest(OracleId oracle, std::size_t num_reports,
                       std::size_t shards, std::size_t threads, int reps) {
  const FrequencyOracle& fo = GetFrequencyOracle(OracleIdName(oracle));
  const FoParams params{kEpsilon, g_domain};

  const ClientFleet fleet(num_reports, TruthValue, 97);
  RoundRequest request;
  request.timestamp = 0;
  request.epsilon = kEpsilon;
  request.domain = g_domain;
  request.oracle = oracle;
  const auto packets = fleet.ProduceRound(request, threads);

  IngestCell cell;
  cell.oracle = OracleIdName(oracle);
  cell.shards = shards;
  cell.threads = threads;
  cell.reports = num_reports;
  for (int rep = 0; rep < std::max(1, reps); ++rep) {
    ReportRouter router(fo, params, oracle, 0, shards);
    const auto start = std::chrono::steady_clock::now();
    router.IngestBatch(packets, threads);
    IngestStats stats;
    auto sketch = router.Close(&stats);
    const double wall = Seconds(start);
    if (stats.accepted != num_reports || stats.total() != num_reports) {
      std::fprintf(stderr, "ingest dropped packets: %s\n",
                   stats.ToString().c_str());
      std::exit(1);
    }
    const double rate =
        wall > 0.0 ? static_cast<double>(num_reports) / wall : 0.0;
    cell.reports_per_s = std::max(cell.reports_per_s, rate);
  }
  return cell;
}

struct ServeResult {
  uint64_t releases = 0;
  IngestStats ingest;  // summed over sessions via IngestStats::operator+=
  double wall_s = 0.0;
};

// N concurrent sessions advanced over T timestamps.
ServeResult BenchServe(const std::vector<std::string>& mechanisms,
                       uint64_t users_per_stream, std::size_t timestamps,
                       std::size_t shards, std::size_t threads) {
  StreamServer server(threads);
  std::vector<std::unique_ptr<ClientFleet>> fleets;
  for (std::size_t i = 0; i < mechanisms.size(); ++i) {
    fleets.push_back(
        std::make_unique<ClientFleet>(users_per_stream, TruthValue, 41 + i));
    MechanismConfig config;
    config.epsilon = kEpsilon;
    config.window = 8;
    config.fo = "GRR";
    config.seed = 17 + i;
    SessionOptions options;
    options.num_shards = shards;
    options.num_threads = threads;
    server.AddSession(
        mechanisms[i],
        std::make_unique<MechanismSession>(
            CreateMechanism(mechanisms[i], config, users_per_stream),
            g_domain, options, fleets[i]->Transport(threads)));
  }

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < timestamps; ++t) server.AdvanceAll();
  ServeResult result;
  result.wall_s = Seconds(start);
  result.releases = mechanisms.size() * timestamps;
  for (std::size_t i = 0; i < server.num_sessions(); ++i) {
    result.ingest += server.session(i).stats();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (HandleHelp(flags,
                 "bench_service_throughput — online serving layer: sharded "
                 "wire ingestion and multi-session serving rates")) {
    return 0;
  }
  const double scale = BenchScale(flags);
  const std::size_t threads = BenchThreads(flags);
  const int reps = RepsFlag(flags, 3);
  const std::string csv_path = flags.GetString("csv", "");
  g_domain = static_cast<std::size_t>(
      std::max<int64_t>(2, flags.GetInt("domain", 64)));

  PrintHeader("Service throughput (reports/sec)", scale);

  // --- section 1: raw sharded ingestion ---
  const std::size_t num_reports = ScaledUsers(scale, 400000);
  std::vector<std::size_t> shard_counts = {1, 2, 4, 8};
  std::vector<IngestCell> cells;
  std::printf("oracle   shards  threads     reports    reports/sec\n");
  for (OracleId oracle :
       {OracleId::kGrr, OracleId::kOue, OracleId::kOlh, OracleId::kHr}) {
    for (std::size_t shards : shard_counts) {
      const IngestCell cell =
          BenchIngest(oracle, num_reports, shards, threads, reps);
      std::printf("%-8s %6zu  %7zu  %10llu  %13.0f\n", cell.oracle.c_str(),
                  cell.shards, cell.threads,
                  static_cast<unsigned long long>(cell.reports),
                  cell.reports_per_s);
      cells.push_back(cell);
    }
  }

  // The measured shards -> reports/sec curve above is what sanity-checks
  // the adaptive default (num_shards = 0 resolves to the hardware thread
  // count inside ReportRouter): the curve's knee sits at the core count.
  {
    const FrequencyOracle& fo = GetFrequencyOracle("GRR");
    ReportRouter adaptive(fo, {kEpsilon, g_domain}, OracleId::kGrr, 0, 0);
    std::printf(
        "\nadaptive default: num_shards=0 -> %zu shards "
        "(hardware threads: %zu)\n",
        adaptive.num_shards(), HardwareThreads());
  }

  // --- section 2: end-to-end multi-session serving ---
  const std::vector<std::string> mechanisms = {"LBU", "LBA", "LPU", "LPA"};
  const uint64_t users_per_stream =
      std::max<uint64_t>(400, ScaledUsers(scale, 50000));
  const std::size_t timestamps = std::max<std::size_t>(8, ScaledLength(scale, 64));
  const std::size_t serve_shards = std::min<std::size_t>(4, shard_counts.back());
  const ServeResult serve = BenchServe(mechanisms, users_per_stream,
                                       timestamps, serve_shards, threads);
  std::printf(
      "\nend-to-end: %zu sessions x %zu timestamps, %llu users/stream, "
      "%zu shards\n",
      mechanisms.size(), timestamps,
      static_cast<unsigned long long>(users_per_stream), serve_shards);
  std::printf("  releases: %llu (%.1f/sec)   ingested reports: %llu "
              "(%.0f/sec)\n",
              static_cast<unsigned long long>(serve.releases),
              serve.wall_s > 0.0
                  ? static_cast<double>(serve.releases) / serve.wall_s
                  : 0.0,
              static_cast<unsigned long long>(serve.ingest.accepted),
              serve.wall_s > 0.0
                  ? static_cast<double>(serve.ingest.accepted) / serve.wall_s
                  : 0.0);
  std::printf("  session ingest totals: %s (%llu packets)\n",
              serve.ingest.ToString().c_str(),
              static_cast<unsigned long long>(serve.ingest.total()));

  if (!csv_path.empty()) {
    CsvWriter csv(csv_path,
                  {"oracle", "shards", "threads", "reports", "reports_per_s"});
    for (const IngestCell& cell : cells) {
      csv.WriteRow(cell.oracle,
                   {static_cast<double>(cell.shards),
                    static_cast<double>(cell.threads),
                    static_cast<double>(cell.reports), cell.reports_per_s});
    }
  }

  // Peak ingestion configuration, folded into BENCH_*.json by
  // scripts/run_benches.sh.
  const auto best = std::max_element(
      cells.begin(), cells.end(), [](const IngestCell& a, const IngestCell& b) {
        return a.reports_per_s < b.reports_per_s;
      });
  std::printf(
      "\n[throughput] threads=%zu shards=%zu domain=%zu oracle=%s reports=%llu "
      "reports_per_s=%.0f serve_reports_per_s=%.0f wall_s=%.3f\n",
      threads, best->shards, g_domain, best->oracle.c_str(),
      static_cast<unsigned long long>(best->reports), best->reports_per_s,
      serve.wall_s > 0.0
          ? static_cast<double>(serve.ingest.accepted) / serve.wall_s
          : 0.0,
      serve.wall_s);
  return 0;
}
