// Reproduces Fig. 7 (a)-(f): ROC curves for above-threshold event
// monitoring at eps = 1, w = 50, with the methods the paper plots
// (LBA, LSP, LPU, LPD, LPA). The threshold is
// delta = 0.75 (max - min) + min over the true monitored statistic.
//
// The figure is summarized as AUC plus TPR at fixed FPR operating points
// (0.01 / 0.1 / 0.3); full curves can be dumped with --csv.
//
// Paper shape to verify: LPD/LPA dominate; LSP is worst despite its low MRE
// (its long approximation runs miss real-time changes); LBA sits between.
#include <cstddef>
#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/event_monitor.h"
#include "analysis/roc.h"
#include "analysis/runner.h"
#include "bench_common.h"
#include "core/factory.h"
#include "util/csv_writer.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace ldpids;
  const Flags flags(argc, argv);
  const std::string kTitle =
      "Fig. 7 — ROC for above-threshold event monitoring (eps=1, w=50)";
  if (bench::HandleHelp(flags, kTitle)) {
    return 0;
  }
  const double scale = flags.GetDouble("scale", 0.3);
  const int reps = bench::RepsFlag(flags, 3);
  const std::string fo = flags.GetString("fo", "GRR");
  const std::string csv_path = flags.GetString("csv", "");
  const std::size_t threads = bench::BenchThreads(flags);

  bench::PrintHeader(kTitle, scale);
  bench::ThroughputRecorder throughput(threads);
  const std::vector<std::string> methods = {"LBA", "LSP", "LPU", "LPD",
                                            "LPA"};
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{"dataset", "method", "fpr", "tpr"});
  }

  for (const auto& data : bench::MakeAllDatasets(scale)) {
    const auto truth = data->TrueStream();
    std::printf("dataset %s  (N=%llu, T=%zu, d=%zu)\n", data->name().c_str(),
                static_cast<unsigned long long>(data->num_users()),
                data->length(), data->domain());
    TablePrinter table(
        {"method", "AUC", "TPR@FPR=.01", "TPR@FPR=.1", "TPR@FPR=.3"});
    for (const std::string& method : methods) {
      // Repetitions fan out across threads; per-rep results land in fixed
      // slots and are reduced in rep order, so the table matches the serial
      // run bit-for-bit.
      struct RepResult {
        double auc = 0.0, tpr01 = 0.0, tpr10 = 0.0, tpr30 = 0.0;
        bool valid = false;
        std::vector<RocPoint> curve;  // kept only for rep 0 (CSV dump)
      };
      const std::vector<RepResult> per_rep = bench::ParallelReps<RepResult>(
          threads, reps, [&](std::size_t rep) {
            MechanismConfig config;
            config.epsilon = 1.0;
            config.window = 50;
            config.fo = fo;
            const RunResult run = RunMechanism(*data, method, config, rep);
            std::vector<double> scores;
            std::vector<bool> labels;
            RepResult r;
            if (!PrepareEventDetection(truth, run.releases, &scores,
                                       &labels)) {
              return r;
            }
            auto curve = ComputeRoc(scores, labels);
            r.auc = RocAuc(scores, labels);
            r.tpr01 = TprAtFpr(curve, 0.01);
            r.tpr10 = TprAtFpr(curve, 0.1);
            r.tpr30 = TprAtFpr(curve, 0.3);
            r.valid = true;
            if (rep == 0) r.curve = std::move(curve);
            return r;
          });
      double auc = 0.0, tpr01 = 0.0, tpr10 = 0.0, tpr30 = 0.0;
      int valid = 0;
      for (const RepResult& r : per_rep) {
        if (!r.valid) continue;
        auc += r.auc;
        tpr01 += r.tpr01;
        tpr10 += r.tpr10;
        tpr30 += r.tpr30;
        ++valid;
      }
      if (csv && !per_rep.empty() && per_rep[0].valid) {
        for (const RocPoint& p : per_rep[0].curve) {
          csv->WriteRow({data->name(), method,
                         FormatDouble(p.false_positive_rate, 6),
                         FormatDouble(p.true_positive_rate, 6)});
        }
      }
      if (valid == 0) {
        table.AddRow({method, "n/a (no events in truth)"});
        continue;
      }
      table.AddRow(method, {auc / valid, tpr01 / valid, tpr10 / valid,
                            tpr30 / valid});
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  throughput.Print();
  return 0;
}
