// Reproduces Table 2: CFPU of all seven methods on Sin, Log, Taxi,
// Foursquare and Taobao under three (eps, w) settings:
// (1, 20), (2, 20) and (2, 40).
//
// Paper values to compare against (eps=1, w=20 block):
//   LBU 1.0000, LBD ~1.27, LBA ~1.17, LSP/LPU 0.0500, LPD ~0.046,
//   LPA ~0.040 — budget division pays >= 1 report per user per timestamp,
//   population division pays ~1/w, and the adaptive population methods
//   shave it further by skipping publication cohorts.
#include <cstdio>
#include <iostream>

#include "analysis/runner.h"
#include "bench_common.h"
#include "core/factory.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace ldpids;
  const Flags flags(argc, argv);
  const std::string kTitle =
      "Table 2 — CFPU comparison on all datasets";
  if (bench::HandleHelp(flags, kTitle)) {
    return 0;
  }
  const double scale = flags.GetDouble("scale", 0.3);
  const int reps = bench::RepsFlag(flags, 2);
  const std::size_t threads = bench::BenchThreads(flags);
  bench::PrintHeader(kTitle, scale);
  bench::ThroughputRecorder throughput(threads);

  // Sin, Log + the three real-world-like datasets (paper's Table 2 columns).
  std::vector<std::shared_ptr<StreamDataset>> datasets;
  {
    const uint64_t n = bench::ScaledUsers(scale);
    const std::size_t t = bench::ScaledLength(scale);
    datasets.push_back(MakeSinDataset(n, t));
    datasets.push_back(MakeLogDataset(n, t));
    for (auto& d : bench::MakeRealWorldDatasets(scale)) datasets.push_back(d);
  }

  struct Setting {
    double epsilon;
    std::size_t window;
  };
  const std::vector<Setting> settings = {{1.0, 20}, {2.0, 20}, {2.0, 40}};

  // Warm every dataset's count cache before the parallel cells below.
  for (const auto& data : datasets) data->TrueStream();
  for (const Setting& s : settings) {
    std::printf("eps=%.0f, w=%zu\n", s.epsilon, s.window);
    std::vector<std::string> header = {"method"};
    for (const auto& d : datasets) header.push_back(d->name());
    TablePrinter table(header);
    for (const std::string& method : AllMechanismNames()) {
      const std::vector<RunMetrics> cells = bench::EvaluateCellsInParallel(
          threads, datasets.size(), [&](std::size_t i) {
            MechanismConfig config;
            config.epsilon = s.epsilon;
            config.window = s.window;
            return EvaluateMechanism(*datasets[i], method, config,
                                     static_cast<std::size_t>(reps), threads);
          });
      std::vector<double> row;
      for (const RunMetrics& m : cells) row.push_back(m.cfpu);
      table.AddRow(method, row);
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  throughput.Print();
  return 0;
}
