// Reproduces Fig. 4 (a)-(f): release accuracy (MRE) of all seven w-event
// LDP methods as the privacy budget eps varies, window w = 20, on the three
// synthetic and three real-world-like datasets.
//
// Paper shape to verify: MRE decreases with eps everywhere; the population
// division rows (LSP, LPU, LPD, LPA) sit far below the budget division rows
// (LBU, LBD, LBA); LBD/LBA < LBU; LSP lowest-or-close on smooth streams.
#include <cstdio>
#include <iostream>

#include "analysis/runner.h"
#include "bench_common.h"
#include "core/factory.h"
#include "util/csv_writer.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace ldpids;
  const Flags flags(argc, argv);
  const std::string kTitle =
      "Fig. 4 — data utility (MRE) vs privacy budget eps, w=20";
  if (bench::HandleHelp(flags, kTitle)) {
    return 0;
  }
  const double scale = flags.GetDouble("scale", 0.3);
  const int reps = bench::RepsFlag(flags, 2);
  const std::string fo = flags.GetString("fo", "GRR");
  const std::string csv_path = flags.GetString("csv", "");
  const std::size_t threads = bench::BenchThreads(flags);

  bench::PrintHeader(kTitle, scale);
  bench::ThroughputRecorder throughput(threads);
  const std::vector<double> epsilons = {0.5, 1.0, 1.5, 2.0, 2.5};
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{"dataset", "method", "eps", "mre",
                                           "mae", "mse"});
  }

  for (const auto& data : bench::MakeAllDatasets(scale)) {
    std::printf("dataset %s  (N=%llu, T=%zu, d=%zu)\n", data->name().c_str(),
                static_cast<unsigned long long>(data->num_users()),
                data->length(), data->domain());
    std::vector<std::string> header = {"method"};
    for (double eps : epsilons) header.push_back("eps=" + FormatDouble(eps, 1));
    TablePrinter table(header);
    std::vector<MechanismConfig> configs;
    for (double eps : epsilons) {
      MechanismConfig config;
      config.epsilon = eps;
      config.window = 20;
      config.fo = fo;
      configs.push_back(config);
    }
    for (const std::string& method : AllMechanismNames()) {
      // SweepMechanism fans out the full (eps x repetition) grid, so every
      // engine lane stays busy even at --reps=1.
      const std::vector<RunMetrics> cells = SweepMechanism(
          *data, method, configs, static_cast<std::size_t>(reps), threads);
      std::vector<double> row;
      for (std::size_t i = 0; i < epsilons.size(); ++i) {
        const RunMetrics& m = cells[i];
        row.push_back(m.mre);
        if (csv) {
          csv->WriteRow({data->name(), method, FormatDouble(epsilons[i], 2),
                         FormatDouble(m.mre, 6), FormatDouble(m.mae, 6),
                         FormatDouble(m.mse, 8)});
        }
      }
      table.AddRow(method, row);
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  throughput.Print();
  return 0;
}
