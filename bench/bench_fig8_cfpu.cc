// Reproduces Fig. 8 (a)-(d): communication frequency per user (CFPU) on the
// LNS dataset with respect to (a) population N, (b) fluctuation Q,
// (c) privacy budget eps, (d) window size w.
//
// Paper shape to verify: budget division sits at >= 1 (LBU exactly 1,
// LBD ~1.27, LBA ~1.17); population division sits near 1/w, with LPD/LPA
// strictly below LSP/LPU; CFPU of the adaptive methods grows with Q and
// with eps, and falls with w.
#include <cstdio>
#include <iostream>

#include "analysis/runner.h"
#include "bench_common.h"
#include "core/factory.h"
#include "util/table_printer.h"

namespace {

using namespace ldpids;

void RunPanel(const std::string& title,
              const std::vector<std::string>& labels,
              const std::vector<std::shared_ptr<StreamDataset>>& datasets,
              const std::vector<MechanismConfig>& configs, int reps,
              std::size_t threads) {
  std::printf("%s\n", title.c_str());
  // Warm every dataset's count cache before the parallel cells below (the
  // eps/w panels share one dataset across cells).
  for (const auto& data : datasets) data->TrueStream();
  std::vector<std::string> header = {"method"};
  for (const auto& label : labels) header.push_back(label);
  TablePrinter table(header);
  for (const std::string& method : AllMechanismNames()) {
    const std::vector<RunMetrics> cells = bench::EvaluateCellsInParallel(
        threads, datasets.size(), [&](std::size_t i) {
          return EvaluateMechanism(*datasets[i], method, configs[i],
                                   static_cast<std::size_t>(reps), threads);
        });
    std::vector<double> row;
    for (const RunMetrics& m : cells) row.push_back(m.cfpu);
    table.AddRow(method, row);
  }
  table.Print(std::cout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::string kTitle =
      "Fig. 8 — communication frequency per user (LNS)";
  if (bench::HandleHelp(flags, kTitle)) {
    return 0;
  }
  const double scale = flags.GetDouble("scale", 0.3);
  const int reps = bench::RepsFlag(flags, 2);
  const std::size_t threads = bench::BenchThreads(flags);
  bench::PrintHeader(kTitle, scale);
  bench::ThroughputRecorder throughput(threads);
  const std::size_t t = bench::ScaledLength(scale);

  MechanismConfig base;
  base.epsilon = 1.0;
  base.window = 20;

  // (a) CFPU vs N.
  {
    std::vector<std::string> labels;
    std::vector<std::shared_ptr<StreamDataset>> datasets;
    std::vector<MechanismConfig> configs;
    for (uint64_t n : {50000ull, 100000ull, 150000ull, 200000ull}) {
      const uint64_t sn = bench::ScaledUsers(scale, n);
      labels.push_back("N=" + std::to_string(sn));
      datasets.push_back(MakeLnsDataset(sn, t));
      configs.push_back(base);
    }
    RunPanel("(a) CFPU vs population N (eps=1, w=20)", labels, datasets,
             configs, reps, threads);
  }

  // (b) CFPU vs fluctuation Q.
  {
    std::vector<std::string> labels;
    std::vector<std::shared_ptr<StreamDataset>> datasets;
    std::vector<MechanismConfig> configs;
    for (double q : {0.01, 0.02, 0.04, 0.08}) {
      labels.push_back("sqrtQ=" + FormatDouble(q, 2));
      datasets.push_back(MakeLnsDataset(bench::ScaledUsers(scale), t, q));
      configs.push_back(base);
    }
    RunPanel("(b) CFPU vs fluctuation sqrt(Q) (eps=1, w=20)", labels,
             datasets, configs, reps, threads);
  }

  // (c) CFPU vs eps.
  {
    const auto data = MakeLnsDataset(bench::ScaledUsers(scale), t);
    std::vector<std::string> labels;
    std::vector<std::shared_ptr<StreamDataset>> datasets;
    std::vector<MechanismConfig> configs;
    for (double eps : {0.5, 1.0, 1.5, 2.0}) {
      labels.push_back("eps=" + FormatDouble(eps, 1));
      datasets.push_back(data);
      MechanismConfig c = base;
      c.epsilon = eps;
      configs.push_back(c);
    }
    RunPanel("(c) CFPU vs privacy budget eps (w=20)", labels, datasets,
             configs, reps, threads);
  }

  // (d) CFPU vs w.
  {
    const auto data = MakeLnsDataset(bench::ScaledUsers(scale), t);
    std::vector<std::string> labels;
    std::vector<std::shared_ptr<StreamDataset>> datasets;
    std::vector<MechanismConfig> configs;
    for (std::size_t w : {10u, 20u, 30u, 40u}) {
      labels.push_back("w=" + std::to_string(w));
      datasets.push_back(data);
      MechanismConfig c = base;
      c.window = w;
      configs.push_back(c);
    }
    RunPanel("(d) CFPU vs window size w (eps=1)", labels, datasets, configs,
             reps, threads);
  }
  throughput.Print();
  return 0;
}
