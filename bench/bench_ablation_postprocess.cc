// Ablation: release post-processing and FAST-style smoothing.
//
// Both are privacy-free transformations of the released stream (the
// post-processing theorem), and both matter in practice:
//   * consistency enforcement (clamp / simplex projection / norm-sub)
//     removes the impossible negative bins of unbiased LDP estimates;
//   * Kalman smoothing (Remark 3's FAST composition) exploits temporal
//     correlation that the raw releases leave on the table.
//
// The table reports MRE on LNS (left, sparse binary) and a Taxi-like
// categorical stream (right) for each mechanism x post-processing mode,
// plus a smoothing row for the always-publish methods.
#include <cstddef>
#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/metrics.h"
#include "analysis/postprocess.h"
#include "analysis/runner.h"
#include "analysis/smoother.h"
#include "bench_common.h"
#include "core/factory.h"
#include "fo/frequency_oracle.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace ldpids;
  const Flags flags(argc, argv);
  const std::string kTitle =
      "Ablation — consistency post-processing and smoothing (eps=1, w=20)";
  if (bench::HandleHelp(flags, kTitle)) {
    return 0;
  }
  const double scale = flags.GetDouble("scale", 0.3);
  const int reps = bench::RepsFlag(flags, 2);
  const std::size_t threads = bench::BenchThreads(flags);
  bench::PrintHeader(kTitle, scale);
  bench::ThroughputRecorder throughput(threads);

  const auto lns = MakeLnsDataset(bench::ScaledUsers(scale),
                                  bench::ScaledLength(scale));
  RealWorldSimOptions o;
  o.scale = scale;
  const auto taxi = MakeTaxiLikeDataset(o);

  const std::vector<PostProcess> modes = {
      PostProcess::kNone, PostProcess::kClamp, PostProcess::kSimplex,
      PostProcess::kNormSub};

  for (const auto& data :
       std::vector<std::shared_ptr<StreamDataset>>{lns, taxi}) {
    std::printf("dataset %s — MRE by post-processing mode\n",
                data->name().c_str());
    std::vector<std::string> header = {"method"};
    for (PostProcess m : modes) header.push_back(PostProcessName(m));
    TablePrinter table(header);
    for (const std::string method : {"LBU", "LBA", "LPU", "LPA"}) {
      std::vector<double> row;
      for (PostProcess mode : modes) {
        MechanismConfig config;
        config.epsilon = 1.0;
        config.window = 20;
        config.post_process = mode;
        row.push_back(EvaluateMechanism(*data, method, config,
                                        static_cast<std::size_t>(reps),
                                        threads)
                          .mre);
      }
      table.AddRow(method, row);
    }
    table.Print(std::cout);
    std::printf("\n");
  }

  // Smoothing ablation on LNS: raw vs Kalman-filtered releases.
  std::printf("Kalman smoothing (FAST-style), LNS — MSE raw vs smoothed\n");
  const auto truth = lns->TrueStream();
  const double q = EstimateProcessVariance(truth);
  TablePrinter smooth_table({"method", "raw MSE", "smoothed MSE", "gain"});
  for (const std::string method : {"LBU", "LPU", "LPA"}) {
    MechanismConfig config;
    config.epsilon = 1.0;
    config.window = 20;
    // Per-method measurement variance at publications.
    double r;
    const auto& fo = GetFrequencyOracle("GRR");
    if (method == "LBU") {
      r = fo.MeanVariance(1.0 / 20.0, lns->num_users(), 2);
    } else if (method == "LPU") {
      r = fo.MeanVariance(1.0, lns->num_users() / 20, 2);
    } else {
      r = fo.MeanVariance(1.0, lns->num_users() / (2 * 20), 2);
    }
    // Repetitions fan out across threads; the reduction stays in fixed rep
    // order so the printed numbers match the serial run bit-for-bit.
    struct RepMse {
      double raw = 0.0;
      double smoothed = 0.0;
    };
    const std::vector<RepMse> per_rep = bench::ParallelReps<RepMse>(
        threads, reps, [&](std::size_t rep) {
          const RunResult run = RunMechanism(*lns, method, config, rep);
          return RepMse{MeanSquaredError(truth, run.releases),
                        MeanSquaredError(truth, SmoothRun(run, q, r))};
        });
    double raw = 0.0, smoothed = 0.0;
    for (const RepMse& m : per_rep) {
      raw += m.raw;
      smoothed += m.smoothed;
    }
    smooth_table.AddRow(method,
                        {raw / reps, smoothed / reps,
                         raw > 0 ? raw / std::max(smoothed, 1e-18) : 0.0},
                        6);
  }
  smooth_table.Print(std::cout);
  throughput.Print();
  return 0;
}
