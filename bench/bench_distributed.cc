// Distributed aggregation tier throughput: reports/s of a merge-tree
// deployment versus the single-process baseline.
//
// The sweep runs one in-process merge tree per aggregator count K in
// {1, 2, 4}: K AggregatorNodes each ingest their UserAssignment range
// slice of the fleet (in parallel, one thread per child — the in-process
// stand-in for K separate processes), encode partial sketches, and a
// RootSession drains and folds them through a RoundBuffer. The baseline
// is the same mechanism over PR 3's in-process transport. Every tree
// run's releases are diffed against the baseline's — the bench aborts on
// any divergence, so the recorded numbers are always from exact runs.
//
// The "[throughput]" line records reports_per_s_single, per-K
// reports_per_s_k{K}, and root_merge_ratio = k1 / single — the
// single-aggregator tree against the monolith, i.e. the pure overhead of
// the sketch-wire hop + root merge, gated >= 0.95 by
// scripts/check_bench_regression.py on BENCH_distributed.json.
//
// Flags: --scale, --reps (best rep reported), --threads (per-child ingest
// threads), --aggregators (highest K of the sweep), --csv, --help.
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/factory.h"
#include "core/mechanism.h"
#include "fo/wire.h"
#include "service/aggregator.h"
#include "service/client_fleet.h"
#include "service/session.h"
#include "transport/frame.h"
#include "transport/round_buffer.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace {

using namespace ldpids;
using namespace ldpids::bench;
using service::AggregatorNode;
using service::AggregatorOptions;
using service::AssignMode;
using service::ClientFleet;
using service::MechanismSession;
using service::RootSession;
using service::RoundRequest;
using service::SessionOptions;
using service::UserAssignment;
using transport::MakePartialSketchFrame;
using transport::RoundBuffer;

constexpr std::size_t kDomain = 64;
constexpr double kEpsilon = 1.0;
constexpr uint64_t kSessionId = 1;
constexpr char kFo[] = "OUE";

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

uint32_t TruthValue(uint64_t user, std::size_t t) {
  return static_cast<uint32_t>(HashCounter(13, user, t) % kDomain);
}

MechanismConfig BenchConfig() {
  MechanismConfig config;
  config.epsilon = kEpsilon;
  config.window = 8;
  config.fo = kFo;
  config.seed = 17;
  return config;
}

struct RunCell {
  uint64_t reports = 0;
  double reports_per_s = 0.0;
  double wall_s = 0.0;
  std::vector<Histogram> releases;
};

// The monolith: one session, whole fleet, in-process transport.
RunCell BenchSingleProcess(uint64_t users, std::size_t timestamps,
                           std::size_t threads, int reps) {
  RunCell best;
  for (int rep = 0; rep < std::max(1, reps); ++rep) {
    const ClientFleet fleet(users, TruthValue, 42);
    SessionOptions options;
    options.num_shards = 0;  // adaptive
    options.num_threads = threads;
    MechanismSession session(CreateMechanism("LBA", BenchConfig(), users),
                             kDomain, options, fleet.Transport(threads));
    RunCell cell;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t t = 0; t < timestamps; ++t) {
      cell.releases.push_back(session.Advance().release);
    }
    cell.wall_s = Seconds(start);
    cell.reports = session.stats().accepted;
    if (cell.wall_s > 0.0) {
      cell.reports_per_s = static_cast<double>(cell.reports) / cell.wall_s;
    }
    if (cell.reports_per_s > best.reports_per_s) best = std::move(cell);
  }
  return best;
}

// One merge tree: K children (a thread each, simulating K processes)
// ingest their range slice and deliver partials into the root's buffer.
RunCell BenchMergeTree(uint64_t users, std::size_t timestamps,
                       std::size_t threads, std::size_t num_children,
                       int reps) {
  RunCell best;
  for (int rep = 0; rep < std::max(1, reps); ++rep) {
    const ClientFleet fleet(users, TruthValue, 42);
    const UserAssignment assign(num_children, users, AssignMode::kRange);
    const auto slices = assign.PartitionAll();
    std::vector<std::unique_ptr<AggregatorNode>> children;
    for (std::size_t k = 0; k < num_children; ++k) {
      AggregatorOptions options;
      options.num_shards = 0;  // adaptive, like the baseline
      options.node_id = 1 + k;
      children.push_back(std::make_unique<AggregatorNode>(
          GetFrequencyOracle(kFo), OracleIdFromName(kFo), kDomain, options));
    }

    RoundBuffer buffer;
    auto announce = [&](const RoundRequest& request) {
      std::vector<std::thread> workers;
      workers.reserve(num_children);
      for (std::size_t k = 0; k < num_children; ++k) {
        workers.emplace_back([&, k] {
          RoundRequest child_request = request;
          child_request.cohort = &slices[k];
          auto payload = children[k]->RunRoundToPartial(
              child_request,
              [&](const RoundRequest& req, service::ReportRouter& router) {
                router.IngestBatch(fleet.ProduceRound(req, threads),
                                   threads);
              });
          buffer.Deliver(MakePartialSketchFrame(
              kSessionId, request.round_index, std::move(payload)));
        });
      }
      for (auto& worker : workers) worker.join();
    };

    RunCell cell;
    const auto start = std::chrono::steady_clock::now();
    {
      RootSession root(CreateMechanism("LBA", BenchConfig(), users), kDomain,
                       SessionOptions{}, num_children, kSessionId, buffer,
                       announce);
      for (std::size_t t = 0; t < timestamps; ++t) {
        cell.releases.push_back(root.Advance().release);
      }
      cell.wall_s = Seconds(start);
      // accepted at the root == users folded across merged partials.
      cell.reports = root.session().stats().accepted;
      const SketchMergeStats& merges = root.merge_stats();
      if (merges.missing != 0 || merges.rejected() != 0) {
        std::fprintf(stderr, "merge tree dropped partials: %s\n",
                     merges.ToString().c_str());
        std::exit(1);
      }
    }
    if (cell.wall_s > 0.0) {
      cell.reports_per_s = static_cast<double>(cell.reports) / cell.wall_s;
    }
    if (cell.reports_per_s > best.reports_per_s) best = std::move(cell);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (HandleHelp(flags,
                 "bench_distributed — merge-tree aggregation tier: "
                 "reports/s at K aggregators vs the single-process "
                 "baseline (releases diffed for exactness)")) {
    return 0;
  }
  const double scale = BenchScale(flags);
  const std::size_t threads = BenchThreads(flags);
  const int reps = RepsFlag(flags, 3);
  const std::string csv_path = flags.GetString("csv", "");
  const int64_t aggregators_flag = flags.GetInt("aggregators", 4);
  if (aggregators_flag < 1) {
    std::fprintf(stderr, "error: --aggregators must be >= 1, got %lld\n",
                 static_cast<long long>(aggregators_flag));
    return 2;
  }
  const auto max_children = static_cast<std::size_t>(aggregators_flag);

  PrintHeader("Distributed aggregation throughput", scale);

  const uint64_t users = std::max<uint64_t>(400, ScaledUsers(scale, 60000));
  const std::size_t timestamps =
      std::max<std::size_t>(8, ScaledLength(scale, 48));

  const RunCell single =
      BenchSingleProcess(users, timestamps, threads, reps);
  std::printf(
      "single process: LBA x %zu timestamps, %llu users/round\n"
      "  ingested: %llu reports (%12.0f reports/s)\n\n",
      timestamps, static_cast<unsigned long long>(users),
      static_cast<unsigned long long>(single.reports),
      single.reports_per_s);

  std::vector<std::size_t> sweep;
  for (const std::size_t k :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    if (k <= max_children) sweep.push_back(k);
  }
  std::vector<RunCell> cells;
  std::printf("merge tree (partial sketches through a RoundBuffer):\n");
  for (const std::size_t k : sweep) {
    cells.push_back(BenchMergeTree(users, timestamps, threads, k, reps));
    const RunCell& cell = cells.back();
    if (cell.releases != single.releases) {
      std::fprintf(stderr,
                   "merge tree releases diverged from single process "
                   "at K=%zu — refusing to record\n",
                   k);
      return 1;
    }
    std::printf("  K=%zu aggregators: %12.0f reports/s  (exact)\n", k,
                cell.reports_per_s);
  }

  if (!csv_path.empty()) {
    CsvWriter csv(csv_path, {"section", "items", "items_per_s"});
    csv.WriteRow("single_process",
                 {static_cast<double>(single.reports),
                  single.reports_per_s});
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      csv.WriteRow("merge_tree_k" + std::to_string(sweep[i]),
                   {static_cast<double>(cells[i].reports),
                    cells[i].reports_per_s});
    }
  }

  std::string per_k;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    char key[64];
    std::snprintf(key, sizeof(key), " reports_per_s_k%zu=%.0f", sweep[i],
                  cells[i].reports_per_s);
    per_k += key;
  }
  const double ratio = single.reports_per_s > 0.0
                           ? cells.front().reports_per_s /
                                 single.reports_per_s
                           : 0.0;
  std::printf(
      "\n[throughput] threads=%zu aggregators=%zu users=%llu "
      "reports_per_s_single=%.0f%s root_merge_ratio=%.3f wall_s=%.3f\n",
      threads, max_children, static_cast<unsigned long long>(users),
      single.reports_per_s, per_k.c_str(), ratio,
      single.wall_s + cells.front().wall_s);
  return 0;
}
