// Google-benchmark microbenchmarks: throughput of the substrate pieces
// (frequency-oracle perturbation/aggregation, subset sampling, mechanism
// steps, the parallel evaluation engine) so regressions in the hot paths
// are visible.
#include <benchmark/benchmark.h>

#include "analysis/runner.h"
#include "core/factory.h"
#include "datagen/synthetic.h"
#include "fo/client.h"
#include "fo/fo_kernels.h"
#include "fo/frequency_oracle.h"
#include "fo/report_arena.h"
#include "util/distributions.h"
#include "util/rng.h"
#include "util/sampling.h"
#include "util/thread_pool.h"

namespace {

using namespace ldpids;

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.NextU64());
}
BENCHMARK(BM_RngNextU64);

void BM_SampleBinomial(benchmark::State& state) {
  Rng rng(2);
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(SampleBinomial(rng, n, 0.3));
}
BENCHMARK(BM_SampleBinomial)->Arg(100)->Arg(10000)->Arg(1000000);

void BM_GrrClientPerturb(benchmark::State& state) {
  GrrClient client(3);
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Perturb(v, 1.0, d));
    v = (v + 1) % d;
  }
}
BENCHMARK(BM_GrrClientPerturb)->Arg(2)->Arg(32)->Arg(1024);

void BM_FoCohortRound(benchmark::State& state) {
  // One full collection round in cohort mode: the per-timestamp cost of a
  // budget-division mechanism.
  const std::string name = state.range(0) == 0   ? "GRR"
                           : state.range(0) == 1 ? "OUE"
                                                 : "OLH";
  const std::size_t d = static_cast<std::size_t>(state.range(1));
  const auto& fo = GetFrequencyOracle(name);
  Rng rng(4);
  Counts cohort(d, 200000 / d);
  for (auto _ : state) {
    auto sketch = fo.CreateSketch({1.0, d});
    sketch->AddCohort(cohort, rng);
    benchmark::DoNotOptimize(sketch->Estimate());
  }
  state.SetLabel(name + "/d=" + std::to_string(d));
}
BENCHMARK(BM_FoCohortRound)
    ->Args({0, 2})
    ->Args({0, 117})
    ->Args({1, 117})
    ->Args({2, 117});

void BM_FoPerUserRound(benchmark::State& state) {
  // The same round with exact per-user simulation, for comparison.
  const auto& fo = GetFrequencyOracle("GRR");
  Rng rng(5);
  const std::size_t d = 16;
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    auto sketch = fo.CreateSketch({1.0, d});
    for (uint64_t u = 0; u < n; ++u) {
      sketch->AddUser(static_cast<uint32_t>(u % d), rng);
    }
    benchmark::DoNotOptimize(sketch->Estimate());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FoPerUserRound)->Arg(1000)->Arg(100000);

void BM_FoIngestPerUser(benchmark::State& state) {
  // Per-user ingestion cost of one oracle at domain d: the exact client
  // protocol plus server-side folding, one user at a time. For OLH this is
  // the path whose O(d) support scan the batched entry point kills.
  static const std::vector<std::string> kNames = AllFrequencyOracleNames();
  const std::string name = kNames[static_cast<std::size_t>(state.range(0))];
  const std::size_t d = static_cast<std::size_t>(state.range(1));
  const auto& fo = GetFrequencyOracle(name);
  Rng rng(7);
  const uint64_t n = 2000;
  for (auto _ : state) {
    auto sketch = fo.CreateSketch({1.0, d});
    for (uint64_t u = 0; u < n; ++u) {
      sketch->AddUser(static_cast<uint32_t>(u % d), rng);
    }
    benchmark::DoNotOptimize(sketch->Estimate());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetLabel(name + "/d=" + std::to_string(d));
}
BENCHMARK(BM_FoIngestPerUser)
    ->Args({0, 1024})   // GRR
    ->Args({2, 1024})   // OLH: the O(n*d) scan being replaced
    ->Args({2, 4096});  // OLH at larger domain

void BM_FoIngestBatched(benchmark::State& state) {
  // The same ingestion through the adaptive AddUsers batch entry point,
  // which switches to O(d) cohort-style binomial/multinomial sampling.
  // items_per_second here vs BM_FoIngestPerUser is the batched-vs-per-user
  // speedup the trajectory tracks (>= 10x at d >= 1024 for OLH).
  static const std::vector<std::string> kNames = AllFrequencyOracleNames();
  const std::string name = kNames[static_cast<std::size_t>(state.range(0))];
  const std::size_t d = static_cast<std::size_t>(state.range(1));
  const auto& fo = GetFrequencyOracle(name);
  Rng rng(8);
  const uint64_t n = 2000;
  std::vector<uint32_t> values(n);
  for (uint64_t u = 0; u < n; ++u) values[u] = static_cast<uint32_t>(u % d);
  for (auto _ : state) {
    auto sketch = fo.CreateSketch({1.0, d});
    sketch->AddUsers(values, rng);
    benchmark::DoNotOptimize(sketch->Estimate());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetLabel(name + "/d=" + std::to_string(d));
}
BENCHMARK(BM_FoIngestBatched)
    ->Args({0, 1024})
    ->Args({2, 1024})
    ->Args({2, 4096});

void BM_ArenaDecode(benchmark::State& state) {
  // Columnar staging cost: batch-decode one round's packets into the
  // ReportArena's SoA columns (envelope validation, checksum, payload
  // repack) without folding anything. items/sec is packets/sec.
  static const std::vector<std::string> kNames = AllFrequencyOracleNames();
  const std::string name = kNames[static_cast<std::size_t>(state.range(0))];
  const OracleId oracle = OracleIdFromName(name);
  const std::size_t d = static_cast<std::size_t>(state.range(1));
  const std::size_t n = 2000;
  Rng rng(21);
  std::vector<std::vector<uint8_t>> packets;
  packets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    packets.push_back(PerturbToWire(oracle, static_cast<uint32_t>(i % d),
                                    1.0, d, 0, i + 1, rng));
  }
  ReportArena arena;
  for (auto _ : state) {
    arena.BeginRound(oracle, 0, {1.0, d});
    arena.AppendBatch(packets);
    benchmark::DoNotOptimize(arena.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetLabel(name + "/d=" + std::to_string(d));
}
BENCHMARK(BM_ArenaDecode)
    ->Args({0, 64})     // GRR
    ->Args({0, 1024})
    ->Args({1, 1024})   // OUE: payload scales with d
    ->Args({1, 4096})
    ->Args({2, 1024})   // OLH
    ->Args({4, 1024});  // HR

void BM_FoKernel(benchmark::State& state) {
  // Vectorized fold + estimate over pre-staged arena rows: the pure
  // server-side kernel cost (FoSketch::AddReports + EstimateInto), with
  // decode and dedup factored out. items/sec is reports/sec.
  static const std::vector<std::string> kNames = AllFrequencyOracleNames();
  const std::string name = kNames[static_cast<std::size_t>(state.range(0))];
  const OracleId oracle = OracleIdFromName(name);
  const std::size_t d = static_cast<std::size_t>(state.range(1));
  const std::size_t n = 2000;
  Rng rng(22);
  std::vector<std::vector<uint8_t>> packets;
  packets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    packets.push_back(PerturbToWire(oracle, static_cast<uint32_t>(i % d),
                                    1.0, d, 0, i + 1, rng));
  }
  ReportArena arena;
  arena.BeginRound(oracle, 0, {1.0, d});
  arena.AppendBatch(packets);
  std::vector<uint32_t> indices(arena.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    indices[i] = static_cast<uint32_t>(i);
  }
  const ArenaSlice slice{&arena, indices.data(), indices.size()};
  const auto& fo = GetFrequencyOracle(name);
  Histogram est;
  for (auto _ : state) {
    auto sketch = fo.CreateSketch({1.0, d});
    sketch->AddReports(slice);
    sketch->EstimateInto(&est);
    benchmark::DoNotOptimize(est.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetLabel(name + "/d=" + std::to_string(d) + "/backend=" +
                 fokernels::BackendName());
}
BENCHMARK(BM_FoKernel)
    ->Args({0, 64})     // GRR
    ->Args({0, 1024})
    ->Args({0, 4096})
    ->Args({1, 64})     // OUE bit columns
    ->Args({1, 1024})
    ->Args({1, 4096})
    ->Args({2, 64})     // OLH support scan
    ->Args({2, 1024})
    ->Args({2, 4096})
    ->Args({4, 64})     // HR column histogram + FWHT
    ->Args({4, 1024})
    ->Args({4, 4096});

void BM_FoOracleThroughput(benchmark::State& state) {
  // Sustained oracle ingestion throughput (users/sec) for every oracle at a
  // paper-sized timestamp: 100k users over a categorical domain, through
  // the adaptive batch path.
  static const std::vector<std::string> kNames = AllFrequencyOracleNames();
  const std::string name = kNames[static_cast<std::size_t>(state.range(0))];
  const std::size_t d = 117;
  const auto& fo = GetFrequencyOracle(name);
  Rng rng(9);
  const uint64_t n = 100000;
  std::vector<uint32_t> values(n);
  for (uint64_t u = 0; u < n; ++u) values[u] = static_cast<uint32_t>(u % d);
  for (auto _ : state) {
    auto sketch = fo.CreateSketch({1.0, d});
    sketch->AddUsers(values, rng);
    benchmark::DoNotOptimize(sketch->Estimate());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetLabel(name + "/d=117");
}
BENCHMARK(BM_FoOracleThroughput)->DenseRange(0, 4);

void BM_EvaluateMechanismThreads(benchmark::State& state) {
  // Engine scaling: one EvaluateMechanism cell (8 repetitions of LPA over a
  // per-user-simulated Sin stream) at 1..8 threads. Outputs are bit-identical
  // across the sweep; wall-clock per iteration is the scaling curve, and the
  // 1-thread / 8-thread ratio is the engine speedup the trajectory tracks.
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const auto data = MakeSinDataset(20000, 60, 0.05, 11);
  data->TrueStream();  // warm the count cache outside the timed region
  MechanismConfig config;
  config.epsilon = 1.0;
  config.window = 20;
  config.per_user_simulation = true;  // heavy, O(N*T) per repetition
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EvaluateMechanism(*data, "LPA", config, 8, threads));
  }
  state.SetLabel("threads=" + std::to_string(threads));
}
BENCHMARK(BM_EvaluateMechanismThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_PoolSampling(benchmark::State& state) {
  Rng rng(6);
  const std::size_t n = 1000000;
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  std::vector<uint32_t> pool;
  for (auto _ : state) {
    state.PauseTiming();
    pool.resize(n);
    for (std::size_t i = 0; i < n; ++i) pool[i] = static_cast<uint32_t>(i);
    state.ResumeTiming();
    benchmark::DoNotOptimize(SampleFromPool(rng, &pool, m));
  }
}
BENCHMARK(BM_PoolSampling)->Arg(1000)->Arg(25000);

void BM_MechanismStep(benchmark::State& state) {
  // Steady-state per-timestamp cost of each mechanism at paper scale
  // (N = 200k binary LNS, w = 20).
  static const std::vector<std::string> kNames = AllMechanismNames();
  const std::string name = kNames[static_cast<std::size_t>(state.range(0))];
  const auto data = MakeLnsDataset(200000, 400);
  MechanismConfig config;
  config.epsilon = 1.0;
  config.window = 20;
  // Warm the histogram cache so we measure the mechanism, not the dataset.
  for (std::size_t t = 0; t < data->length(); ++t) data->TrueCounts(t);
  auto mechanism = CreateMechanism(name, config, data->num_users());
  std::size_t t = 0;
  for (auto _ : state) {
    if (t >= data->length()) {
      state.PauseTiming();
      mechanism = CreateMechanism(name, config, data->num_users());
      t = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(mechanism->Step(*data, t++));
  }
  state.SetLabel(name);
}
BENCHMARK(BM_MechanismStep)->DenseRange(0, 6);

}  // namespace

BENCHMARK_MAIN();
