// Google-benchmark microbenchmarks: throughput of the substrate pieces
// (frequency-oracle perturbation/aggregation, subset sampling, mechanism
// steps, the parallel evaluation engine) so regressions in the hot paths
// are visible.
#include <benchmark/benchmark.h>

#include <bit>
#include <cstring>

#include "analysis/runner.h"
#include "core/factory.h"
#include "datagen/synthetic.h"
#include "fo/client.h"
#include "fo/fo_kernels.h"
#include "fo/frequency_oracle.h"
#include "fo/report_arena.h"
#include "fo/wire.h"
#include "fo/wire_internal.h"
#include "obs/metrics.h"
#include "obs/stage_trace.h"
#include "transport/frame.h"
#include "util/distributions.h"
#include "util/rng.h"
#include "util/sampling.h"
#include "util/thread_pool.h"

namespace {

using namespace ldpids;

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.NextU64());
}
BENCHMARK(BM_RngNextU64);

void BM_SampleBinomial(benchmark::State& state) {
  Rng rng(2);
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(SampleBinomial(rng, n, 0.3));
}
BENCHMARK(BM_SampleBinomial)->Arg(100)->Arg(10000)->Arg(1000000);

void BM_GrrClientPerturb(benchmark::State& state) {
  GrrClient client(3);
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Perturb(v, 1.0, d));
    v = (v + 1) % d;
  }
}
BENCHMARK(BM_GrrClientPerturb)->Arg(2)->Arg(32)->Arg(1024);

void BM_FoCohortRound(benchmark::State& state) {
  // One full collection round in cohort mode: the per-timestamp cost of a
  // budget-division mechanism.
  const std::string name = state.range(0) == 0   ? "GRR"
                           : state.range(0) == 1 ? "OUE"
                                                 : "OLH";
  const std::size_t d = static_cast<std::size_t>(state.range(1));
  const auto& fo = GetFrequencyOracle(name);
  Rng rng(4);
  Counts cohort(d, 200000 / d);
  for (auto _ : state) {
    auto sketch = fo.CreateSketch({1.0, d});
    sketch->AddCohort(cohort, rng);
    benchmark::DoNotOptimize(sketch->Estimate());
  }
  state.SetLabel(name + "/d=" + std::to_string(d));
}
BENCHMARK(BM_FoCohortRound)
    ->Args({0, 2})
    ->Args({0, 117})
    ->Args({1, 117})
    ->Args({2, 117});

void BM_FoPerUserRound(benchmark::State& state) {
  // The same round with exact per-user simulation, for comparison.
  const auto& fo = GetFrequencyOracle("GRR");
  Rng rng(5);
  const std::size_t d = 16;
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    auto sketch = fo.CreateSketch({1.0, d});
    for (uint64_t u = 0; u < n; ++u) {
      sketch->AddUser(static_cast<uint32_t>(u % d), rng);
    }
    benchmark::DoNotOptimize(sketch->Estimate());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FoPerUserRound)->Arg(1000)->Arg(100000);

void BM_FoIngestPerUser(benchmark::State& state) {
  // Per-user ingestion cost of one oracle at domain d: the exact client
  // protocol plus server-side folding, one user at a time. For OLH this is
  // the path whose O(d) support scan the batched entry point kills.
  static const std::vector<std::string> kNames = AllFrequencyOracleNames();
  const std::string name = kNames[static_cast<std::size_t>(state.range(0))];
  const std::size_t d = static_cast<std::size_t>(state.range(1));
  const auto& fo = GetFrequencyOracle(name);
  Rng rng(7);
  const uint64_t n = 2000;
  for (auto _ : state) {
    auto sketch = fo.CreateSketch({1.0, d});
    for (uint64_t u = 0; u < n; ++u) {
      sketch->AddUser(static_cast<uint32_t>(u % d), rng);
    }
    benchmark::DoNotOptimize(sketch->Estimate());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetLabel(name + "/d=" + std::to_string(d));
}
BENCHMARK(BM_FoIngestPerUser)
    ->Args({0, 1024})   // GRR
    ->Args({2, 1024})   // OLH: the O(n*d) scan being replaced
    ->Args({2, 4096});  // OLH at larger domain

void BM_FoIngestBatched(benchmark::State& state) {
  // The same ingestion through the adaptive AddUsers batch entry point,
  // which switches to O(d) cohort-style binomial/multinomial sampling.
  // items_per_second here vs BM_FoIngestPerUser is the batched-vs-per-user
  // speedup the trajectory tracks (>= 10x at d >= 1024 for OLH).
  static const std::vector<std::string> kNames = AllFrequencyOracleNames();
  const std::string name = kNames[static_cast<std::size_t>(state.range(0))];
  const std::size_t d = static_cast<std::size_t>(state.range(1));
  const auto& fo = GetFrequencyOracle(name);
  Rng rng(8);
  const uint64_t n = 2000;
  std::vector<uint32_t> values(n);
  for (uint64_t u = 0; u < n; ++u) values[u] = static_cast<uint32_t>(u % d);
  for (auto _ : state) {
    auto sketch = fo.CreateSketch({1.0, d});
    sketch->AddUsers(values, rng);
    benchmark::DoNotOptimize(sketch->Estimate());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetLabel(name + "/d=" + std::to_string(d));
}
BENCHMARK(BM_FoIngestBatched)
    ->Args({0, 1024})
    ->Args({2, 1024})
    ->Args({2, 4096});

void BM_ArenaDecode(benchmark::State& state) {
  // Columnar staging cost: batch-decode one round's packets into the
  // ReportArena's SoA columns (envelope validation, checksum, payload
  // repack) without folding anything. items/sec is packets/sec.
  static const std::vector<std::string> kNames = AllFrequencyOracleNames();
  const std::string name = kNames[static_cast<std::size_t>(state.range(0))];
  const OracleId oracle = OracleIdFromName(name);
  const std::size_t d = static_cast<std::size_t>(state.range(1));
  const std::size_t n = 2000;
  Rng rng(21);
  std::vector<std::vector<uint8_t>> packets;
  packets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    packets.push_back(PerturbToWire(oracle, static_cast<uint32_t>(i % d),
                                    1.0, d, 0, i + 1, rng));
  }
  ReportArena arena;
  for (auto _ : state) {
    arena.BeginRound(oracle, 0, {1.0, d});
    arena.AppendBatch(packets);
    benchmark::DoNotOptimize(arena.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetLabel(name + "/d=" + std::to_string(d));
}
BENCHMARK(BM_ArenaDecode)
    ->Args({0, 64})     // GRR
    ->Args({0, 1024})
    ->Args({1, 1024})   // OUE: payload scales with d
    ->Args({1, 4096})
    ->Args({2, 1024})   // OLH
    ->Args({4, 1024});  // HR

// Plain-scalar reference of the wire checksum (same recurrence, no SIMD):
// the baseline BM_WireChecksum compares the vectorized fo/wire.cc kernel
// against. Parity with WireChecksum is pinned by wire_fuzz_test; the setup
// below still cross-checks once so the two benches never time different
// functions.
uint32_t ScalarWireChecksum(const uint8_t* data, std::size_t size) {
  using namespace ldpids::wire_internal;
  uint64_t lanes[4] = {kChecksumSeed0 ^ static_cast<uint64_t>(size),
                       kChecksumSeed1, kChecksumSeed2, kChecksumSeed3};
  for (std::size_t off = 0; off < size; off += 32) {
    uint8_t block[32] = {};
    std::memcpy(block, data + off,
                size - off < 32 ? size - off : std::size_t{32});
    for (std::size_t j = 0; j < 4; ++j) {
      uint64_t word;
      std::memcpy(&word, block + 8 * j, 8);
      lanes[j] = Mix64(lanes[j] ^ word);
    }
  }
  const uint64_t folded = static_cast<uint64_t>(size) ^ lanes[0] ^
                          std::rotl(lanes[1], 17) ^ std::rotl(lanes[2], 34) ^
                          std::rotl(lanes[3], 51);
  return static_cast<uint32_t>(Mix64(folded));
}

void BM_WireChecksum(benchmark::State& state) {
  // One checksum over `size` bytes at byte offset `misalign` from a fresh
  // allocation: arg 0 sweeps packet-sized through bulk inputs, arg 1
  // exercises the unaligned loads every real packet position hits inside a
  // batch buffer. bytes/sec is the headline; compare against
  // BM_WireChecksumScalar at the same args for the SIMD win.
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  const std::size_t misalign = static_cast<std::size_t>(state.range(1));
  const bool scalar = state.range(2) != 0;
  std::vector<uint8_t> buf(size + misalign + 64);
  Rng rng(0xC0FFEE ^ size);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.NextU64());
  const uint8_t* data = buf.data() + misalign;
  if (ScalarWireChecksum(data, size) != WireChecksum(data, size)) {
    state.SkipWithError("scalar reference diverged from WireChecksum");
    return;
  }
  if (scalar) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(ScalarWireChecksum(data, size));
    }
  } else {
    for (auto _ : state) benchmark::DoNotOptimize(WireChecksum(data, size));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(size));
  state.SetLabel(std::string(scalar ? "scalar" : fokernels::BackendName()) +
                 "/size=" + std::to_string(size) +
                 "/misalign=" + std::to_string(misalign));
}
BENCHMARK(BM_WireChecksum)
    ->Args({24, 0, 0})    // GRR packet, aligned
    ->Args({24, 0, 1})
    ->Args({151, 0, 0})   // OUE/SUE packet at d=1024
    ->Args({151, 0, 1})
    ->Args({151, 3, 0})   // unaligned packet position in a batch buffer
    ->Args({151, 3, 1})
    ->Args({4096, 0, 0})  // bulk (amortizes setup/finalizer entirely)
    ->Args({4096, 0, 1});

void BM_VerifyChecksums(benchmark::State& state) {
  // Batched checksum verification over a run of uniform-size packets — the
  // decode-plane entry ReportArena and FrameDecoder funnel through. arg 1
  // toggles the baseline: a per-packet WireChecksum loop over the same
  // packets. The gap is the 8-packet-wide AVX-512 batch win (zero on
  // machines without it, where VerifyChecksums degrades to the loop).
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  const bool serial = state.range(1) != 0;
  const std::size_t n = 1024;
  Rng rng(0xBA7C4 ^ size);
  std::vector<std::vector<uint8_t>> packets(n);
  std::vector<const uint8_t*> datas(n);
  std::vector<std::size_t> sizes(n, size);
  std::vector<uint8_t> ok(n);
  for (std::size_t i = 0; i < n; ++i) {
    packets[i].resize(size);
    for (auto& b : packets[i]) b = static_cast<uint8_t>(rng.NextU64());
    const uint32_t sum = WireChecksum(packets[i].data(), size - 4);
    std::memcpy(packets[i].data() + size - 4, &sum, 4);
    datas[i] = packets[i].data();
  }
  if (serial) {
    for (auto _ : state) {
      for (std::size_t i = 0; i < n; ++i) {
        uint32_t stored;
        std::memcpy(&stored, datas[i] + size - 4, 4);
        ok[i] = WireChecksum(datas[i], size - 4) == stored ? 1 : 0;
      }
      benchmark::DoNotOptimize(ok.data());
    }
  } else {
    for (auto _ : state) {
      VerifyChecksums(datas.data(), sizes.data(), n, ok.data());
      benchmark::DoNotOptimize(ok.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetLabel(std::string(serial ? "per-packet" : "batched") +
                 "/size=" + std::to_string(size));
}
BENCHMARK(BM_VerifyChecksums)
    ->Args({24, 0})   // GRR packets
    ->Args({24, 1})
    ->Args({151, 0})  // OUE/SUE packets at d=1024
    ->Args({151, 1});

void BM_FrameRoundTrip(benchmark::State& state) {
  // Full transport framing loop: encode one round's report packets into a
  // byte stream, then reassemble and checksum-verify every frame through
  // FrameDecoder (pooled blocks, batched verification). items/sec is
  // frames/sec for the whole round trip.
  static const std::vector<std::string> kNames = AllFrequencyOracleNames();
  const std::string name = kNames[static_cast<std::size_t>(state.range(0))];
  const OracleId oracle = OracleIdFromName(name);
  const std::size_t d = 1024;
  const std::size_t n = 512;
  Rng rng(23);
  std::vector<transport::Frame> frames;
  frames.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    frames.push_back(transport::MakeDataFrame(
        7, 0,
        PayloadRef(PerturbToWire(oracle, static_cast<uint32_t>(i % d), 1.0, d,
                                 0, i + 1, rng))));
  }
  std::vector<uint8_t> encoded;
  transport::FrameDecoder decoder;
  transport::Frame out;
  for (auto _ : state) {
    encoded.clear();
    for (const transport::Frame& frame : frames) {
      transport::AppendEncodedFrame(frame, &encoded);
    }
    decoder.Append(encoded);
    std::size_t delivered = 0;
    while (decoder.Next(&out)) ++delivered;
    if (delivered != n) {
      state.SkipWithError("frame loss in round trip");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(encoded.size()));
  state.SetLabel(name + "/d=" + std::to_string(d));
}
BENCHMARK(BM_FrameRoundTrip)
    ->Arg(0)   // GRR: 25-byte packets, framing overhead dominated
    ->Arg(1)   // OUE: 151-byte packets
    ->Arg(2);  // OLH

void BM_FoKernel(benchmark::State& state) {
  // Vectorized fold + estimate over pre-staged arena rows: the pure
  // server-side kernel cost (FoSketch::AddReports + EstimateInto), with
  // decode and dedup factored out. items/sec is reports/sec.
  static const std::vector<std::string> kNames = AllFrequencyOracleNames();
  const std::string name = kNames[static_cast<std::size_t>(state.range(0))];
  const OracleId oracle = OracleIdFromName(name);
  const std::size_t d = static_cast<std::size_t>(state.range(1));
  const std::size_t n = 2000;
  Rng rng(22);
  std::vector<std::vector<uint8_t>> packets;
  packets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    packets.push_back(PerturbToWire(oracle, static_cast<uint32_t>(i % d),
                                    1.0, d, 0, i + 1, rng));
  }
  ReportArena arena;
  arena.BeginRound(oracle, 0, {1.0, d});
  arena.AppendBatch(packets);
  std::vector<uint32_t> indices(arena.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    indices[i] = static_cast<uint32_t>(i);
  }
  const ArenaSlice slice{&arena, indices.data(), indices.size()};
  const auto& fo = GetFrequencyOracle(name);
  Histogram est;
  for (auto _ : state) {
    auto sketch = fo.CreateSketch({1.0, d});
    sketch->AddReports(slice);
    sketch->EstimateInto(&est);
    benchmark::DoNotOptimize(est.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetLabel(name + "/d=" + std::to_string(d) + "/backend=" +
                 fokernels::BackendName());
}
BENCHMARK(BM_FoKernel)
    ->Args({0, 64})     // GRR
    ->Args({0, 1024})
    ->Args({0, 4096})
    ->Args({1, 64})     // OUE bit columns
    ->Args({1, 1024})
    ->Args({1, 4096})
    ->Args({2, 64})     // OLH support scan
    ->Args({2, 1024})
    ->Args({2, 4096})
    ->Args({4, 64})     // HR column histogram + FWHT
    ->Args({4, 1024})
    ->Args({4, 4096});

void BM_FoOracleThroughput(benchmark::State& state) {
  // Sustained oracle ingestion throughput (users/sec) for every oracle at a
  // paper-sized timestamp: 100k users over a categorical domain, through
  // the adaptive batch path.
  static const std::vector<std::string> kNames = AllFrequencyOracleNames();
  const std::string name = kNames[static_cast<std::size_t>(state.range(0))];
  const std::size_t d = 117;
  const auto& fo = GetFrequencyOracle(name);
  Rng rng(9);
  const uint64_t n = 100000;
  std::vector<uint32_t> values(n);
  for (uint64_t u = 0; u < n; ++u) values[u] = static_cast<uint32_t>(u % d);
  for (auto _ : state) {
    auto sketch = fo.CreateSketch({1.0, d});
    sketch->AddUsers(values, rng);
    benchmark::DoNotOptimize(sketch->Estimate());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetLabel(name + "/d=117");
}
BENCHMARK(BM_FoOracleThroughput)->DenseRange(0, 4);

void BM_EvaluateMechanismThreads(benchmark::State& state) {
  // Engine scaling: one EvaluateMechanism cell (8 repetitions of LPA over a
  // per-user-simulated Sin stream) at 1..8 threads. Outputs are bit-identical
  // across the sweep; wall-clock per iteration is the scaling curve, and the
  // 1-thread / 8-thread ratio is the engine speedup the trajectory tracks.
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const auto data = MakeSinDataset(20000, 60, 0.05, 11);
  data->TrueStream();  // warm the count cache outside the timed region
  MechanismConfig config;
  config.epsilon = 1.0;
  config.window = 20;
  config.per_user_simulation = true;  // heavy, O(N*T) per repetition
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EvaluateMechanism(*data, "LPA", config, 8, threads));
  }
  state.SetLabel("threads=" + std::to_string(threads));
}
BENCHMARK(BM_EvaluateMechanismThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_PoolSampling(benchmark::State& state) {
  Rng rng(6);
  const std::size_t n = 1000000;
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  std::vector<uint32_t> pool;
  for (auto _ : state) {
    state.PauseTiming();
    pool.resize(n);
    for (std::size_t i = 0; i < n; ++i) pool[i] = static_cast<uint32_t>(i);
    state.ResumeTiming();
    benchmark::DoNotOptimize(SampleFromPool(rng, &pool, m));
  }
}
BENCHMARK(BM_PoolSampling)->Arg(1000)->Arg(25000);

void BM_MechanismStep(benchmark::State& state) {
  // Steady-state per-timestamp cost of each mechanism at paper scale
  // (N = 200k binary LNS, w = 20).
  static const std::vector<std::string> kNames = AllMechanismNames();
  const std::string name = kNames[static_cast<std::size_t>(state.range(0))];
  const auto data = MakeLnsDataset(200000, 400);
  MechanismConfig config;
  config.epsilon = 1.0;
  config.window = 20;
  // Warm the histogram cache so we measure the mechanism, not the dataset.
  for (std::size_t t = 0; t < data->length(); ++t) data->TrueCounts(t);
  auto mechanism = CreateMechanism(name, config, data->num_users());
  std::size_t t = 0;
  for (auto _ : state) {
    if (t >= data->length()) {
      state.PauseTiming();
      mechanism = CreateMechanism(name, config, data->num_users());
      t = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(mechanism->Step(*data, t++));
  }
  state.SetLabel(name);
}
BENCHMARK(BM_MechanismStep)->DenseRange(0, 6);

// --- src/obs/ hot-path overhead -------------------------------------------
// These pin the cost of the metrics primitives the serving layer pays per
// event: one relaxed fetch_add per counter hit, three per histogram
// observation, plus one steady_clock read per StageTimer endpoint. A
// regression here is a regression on every instrumented hot path.

void BM_ObsCounterAdd(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.GetCounter("bm_total");
  for (auto _ : state) {
    counter.Add(1);
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram& hist = registry.GetHistogram("bm_ns");
  uint64_t v = 1;
  for (auto _ : state) {
    hist.Observe(v);
    v = (v * 2862933555777941757ULL + 3037000493ULL) >> 16;  // vary buckets
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsStageTimer(benchmark::State& state) {
  // Full RAII cycle: two NowNs clock reads plus the bucketed Observe —
  // what one instrumented pipeline stage costs per round.
  obs::MetricsRegistry registry;
  obs::StageSet stages(&registry, "bm");
  for (auto _ : state) {
    obs::StageTimer timer(&stages, obs::Stage::kMerge);
    benchmark::DoNotOptimize(&timer);
  }
}
BENCHMARK(BM_ObsStageTimer);

void BM_ObsRegistrySnapshot(benchmark::State& state) {
  // Scrape cost at a realistic registry size (the live_service socket run
  // registers ~60 series): what a Prometheus poll pays, off the hot path.
  obs::MetricsRegistry registry;
  for (int i = 0; i < 48; ++i) {
    registry.GetCounter("bm_c_total", {{"i", std::to_string(i)}}).Add(i);
  }
  for (int i = 0; i < 16; ++i) {
    registry.GetHistogram("bm_h_ns", {{"i", std::to_string(i)}}).Observe(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.Snapshot());
  }
}
BENCHMARK(BM_ObsRegistrySnapshot);

}  // namespace

BENCHMARK_MAIN();
