// Ablation: budget division vs population division, isolated from the
// stream machinery (the quantitative content of Theorem 6.1 and Section
// 6.3.2). For each FO it prints the analytic variance of splitting the
// budget, V(eps/w, N), against splitting the population, V(eps, N/w), and
// the per-publication error schedules of LBD vs LPD (Eqs. 8/10) and
// LBA vs LPA (Eqs. 9/11). Then an empirical end-to-end confirmation.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "analysis/runner.h"
#include "bench_common.h"
#include "core/factory.h"
#include "fo/frequency_oracle.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace ldpids;
  const Flags flags(argc, argv);
  const std::string kTitle =
      "Ablation — budget division vs population division (Theorem 6.1)";
  if (bench::HandleHelp(flags, kTitle)) {
    return 0;
  }
  const double scale = flags.GetDouble("scale", 0.3);
  const std::size_t threads = bench::BenchThreads(flags);
  bench::PrintHeader(kTitle, scale);
  bench::ThroughputRecorder throughput(threads);
  const uint64_t n = 200000;
  const std::size_t d = 5;
  const double eps = 1.0;

  std::printf("V(eps/w, N) vs V(eps, N/w) — N=%llu, d=%zu, eps=%.1f\n",
              static_cast<unsigned long long>(n), d, eps);
  TablePrinter analytic({"FO", "w", "budget-div V", "pop-div V", "ratio"});
  for (const std::string& fo_name : AllFrequencyOracleNames()) {
    const auto& fo = GetFrequencyOracle(fo_name);
    for (uint64_t w : {5ull, 10ull, 20ull, 50ull}) {
      const double vb = fo.MeanVariance(eps / static_cast<double>(w), n, d);
      const double vp = fo.MeanVariance(eps, n / w, d);
      analytic.AddRow({fo_name, std::to_string(w), FormatDouble(vb, 8),
                       FormatDouble(vp, 8), FormatDouble(vb / vp, 1)});
    }
  }
  analytic.Print(std::cout);

  std::printf(
      "\nPer-publication error schedules, m publications in a window "
      "(w=20, GRR):\n");
  const auto& grr = GetFrequencyOracle("GRR");
  TablePrinter schedules(
      {"m", "LBD V(eps/2^{m+1},N)", "LPD V(eps,N/2^{m+1})",
       "LBA V(s*eps,N)", "LPA V(eps,s*N)"});
  const double w = 20.0;
  for (int m = 1; m <= 6; ++m) {
    const double decay = std::pow(2.0, m + 1);
    const double share = (w + m) / (4.0 * w * m);
    schedules.AddRow(
        {std::to_string(m),
         FormatDouble(grr.MeanVariance(eps / decay, n, d), 8),
         FormatDouble(grr.MeanVariance(eps, static_cast<uint64_t>(n / decay), d), 8),
         FormatDouble(grr.MeanVariance(share * eps, n, d), 8),
         FormatDouble(grr.MeanVariance(eps, static_cast<uint64_t>(share * n), d), 8)});
  }
  schedules.Print(std::cout);

  std::printf("\nEmpirical end-to-end MSE on LNS (eps=1, w=20):\n");
  const auto data = MakeLnsDataset(bench::ScaledUsers(scale),
                                   bench::ScaledLength(scale));
  TablePrinter empirical({"pair", "budget-div MSE", "pop-div MSE", "ratio"});
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"LBU", "LPU"}, {"LBD", "LPD"}, {"LBA", "LPA"}};
  MechanismConfig config;
  config.epsilon = eps;
  config.window = 20;
  for (const auto& [b, p] : pairs) {
    const double mb = EvaluateMechanism(*data, b, config, 2, threads).mse;
    const double mp = EvaluateMechanism(*data, p, config, 2, threads).mse;
    empirical.AddRow({b + " vs " + p, FormatDouble(mb, 8),
                      FormatDouble(mp, 8), FormatDouble(mb / mp, 1)});
  }
  empirical.Print(std::cout);
  throughput.Print();
  return 0;
}
