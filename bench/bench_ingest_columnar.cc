// Columnar ingest acceptance bench: per-report ingestion (the serial
// decode-validate-fold loop) against the columnar batch path (ReportArena
// staging + vectorized FoSketch::AddReports) on identical packet rounds.
//
// Both paths run through ReportRouter with a single shard so the numbers
// compare exactly the same work: wire decode, round validation, nonce
// dedup, sketch folding and the close-time merge. The only difference is
// per-packet vs columnar execution. For each oracle and domain size
// d in {64, 1024, 4096} the table reports reports/sec for both paths and
// the columnar speedup; the "[throughput]" line records the d=1024 row per
// oracle (the acceptance configuration for BENCH_ingest_columnar.json).
//
// Flags: --scale, --reps (best rep is reported), --threads (batch-path
// lanes; the per-report path is inherently serial), --csv, --metrics
// (run with a live obs::MetricsRegistry: router stage timing enabled and
// every rep's IngestStats + stage nanos published — the acceptance gate
// pins the d=1024 columnar rate within 5% of the registry-off baseline),
// --help.
#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fo/fo_kernels.h"
#include "fo/frequency_oracle.h"
#include "fo/wire.h"
#include "obs/metrics.h"
#include "obs/stage_trace.h"
#include "obs/stats_feed.h"
#include "service/client_fleet.h"
#include "service/ingest.h"
#include "service/session.h"
#include "util/histogram.h"
#include "util/csv_writer.h"
#include "util/flags.h"

namespace {

using namespace ldpids;
using namespace ldpids::bench;
using service::ClientFleet;
using service::IngestStats;
using service::ReportRouter;
using service::RoundRequest;

constexpr double kEpsilon = 1.0;

std::size_t g_domain = 64;

uint32_t TruthValue(uint64_t user, std::size_t t) {
  return static_cast<uint32_t>(HashCounter(29, user, t) % g_domain);
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Cell {
  std::string oracle;
  std::size_t domain = 0;
  uint64_t reports = 0;
  double per_report_rps = 0.0;
  double columnar_rps = 0.0;
  double speedup() const {
    return per_report_rps > 0.0 ? columnar_rps / per_report_rps : 0.0;
  }
};

// Times one ingest strategy over `reps` runs of the same packets; the best
// rep is reported (noise only shrinks the rate). The timed window runs
// through EstimateInto: sketches may defer folding work until the estimate
// (OLH resolves pending reports lazily), so stopping at Close would credit
// whichever path happened to defer more. Every round of the real serving
// path ends in an estimate anyway. Exits on any drop: every produced
// packet must be accepted, so both paths demonstrably do the full decode +
// validation + fold work.
template <typename RunFn>
double BestRate(const FrequencyOracle& fo, OracleId oracle,
                std::size_t num_reports, int reps,
                obs::MetricsRegistry* metrics, const RunFn& run) {
  double best = 0.0;
  Histogram estimate;
  // Feeds and stage set register once, outside the timed window; with
  // --metrics the window itself pays the router's stage clock reads plus
  // the per-rep counter publication — the instrumented serving cost.
  std::unique_ptr<obs::StageSet> stages;
  std::unique_ptr<obs::IngestStatsFeed> feed;
  if (metrics != nullptr) {
    stages = std::make_unique<obs::StageSet>(metrics, OracleIdName(oracle));
    feed = std::make_unique<obs::IngestStatsFeed>(
        metrics, obs::Labels{{"session", OracleIdName(oracle)}});
  }
  for (int rep = 0; rep < std::max(1, reps); ++rep) {
    ReportRouter router(fo, {kEpsilon, g_domain}, oracle, 0,
                        /*num_shards=*/1);
    if (metrics != nullptr) router.EnableStageTiming();
    const auto start = std::chrono::steady_clock::now();
    run(router);
    IngestStats stats;
    auto sketch = router.Close(&stats);
    sketch->EstimateInto(&estimate);
    if (stages != nullptr) {
      stages->Record(obs::Stage::kArenaDecode,
                     router.stage_nanos().arena_decode);
      stages->Record(obs::Stage::kShardFold, router.stage_nanos().shard_fold);
      stages->Record(obs::Stage::kMerge, router.stage_nanos().merge);
      feed->Add(stats);
    }
    const double wall = Seconds(start);
    if (stats.accepted != num_reports || stats.total() != num_reports) {
      std::fprintf(stderr, "ingest dropped packets: %s\n",
                   stats.ToString().c_str());
      std::exit(1);
    }
    if (wall > 0.0) {
      best = std::max(best, static_cast<double>(num_reports) / wall);
    }
  }
  return best;
}

Cell BenchOracle(OracleId oracle, std::size_t num_reports, int reps,
                 std::size_t threads, obs::MetricsRegistry* metrics) {
  const FrequencyOracle& fo = GetFrequencyOracle(OracleIdName(oracle));

  const ClientFleet fleet(num_reports, TruthValue, 53);
  RoundRequest request;
  request.timestamp = 0;
  request.epsilon = kEpsilon;
  request.domain = g_domain;
  request.oracle = oracle;
  const auto packets = fleet.ProduceRound(request, threads);

  Cell cell;
  cell.oracle = OracleIdName(oracle);
  cell.domain = g_domain;
  cell.reports = num_reports;
  cell.per_report_rps = BestRate(
      fo, oracle, num_reports, reps, metrics, [&](ReportRouter& router) {
        for (const auto& packet : packets) router.Ingest(packet);
      });
  cell.columnar_rps = BestRate(
      fo, oracle, num_reports, reps, metrics, [&](ReportRouter& router) {
        router.IngestBatch(packets, threads);
      });
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (HandleHelp(flags,
                 "bench_ingest_columnar — per-report vs columnar (arena + "
                 "SIMD kernel) wire ingestion, per oracle and domain size")) {
    return 0;
  }
  const double scale = BenchScale(flags);
  const std::size_t threads = BenchThreads(flags);
  const int reps = RepsFlag(flags, 3);
  const std::string csv_path = flags.GetString("csv", "");
  const bool metrics_on = flags.GetBool("metrics", false);
  obs::MetricsRegistry registry;
  obs::MetricsRegistry* metrics = metrics_on ? &registry : nullptr;

  PrintHeader("Columnar ingest speedup (reports/sec, per-report vs arena)",
              scale);
  std::printf("kernel backend: %s   metrics registry: %s\n\n",
              fokernels::BackendName(), metrics_on ? "on" : "off");
  std::printf(
      "oracle   domain     reports   per-report/s     columnar/s  speedup\n");

  const std::vector<std::size_t> domains = {64, 1024, 4096};
  const std::vector<OracleId> oracles = {OracleId::kGrr, OracleId::kOue,
                                         OracleId::kOlh, OracleId::kSue,
                                         OracleId::kHr};
  std::vector<Cell> cells;
  for (std::size_t domain : domains) {
    g_domain = domain;
    // Larger domains carry proportionally heavier payloads (OUE/SUE bit
    // vectors, HR Hadamard columns), so the population shrinks with d to
    // keep the serial baseline path tractable at every scale.
    const std::size_t num_reports = std::max<std::size_t>(
        2000, static_cast<std::size_t>(ScaledUsers(scale, 12000000)) / domain);
    for (OracleId oracle : oracles) {
      const Cell cell =
          BenchOracle(oracle, num_reports, reps, threads, metrics);
      std::printf("%-8s %6zu  %10llu  %13.0f  %13.0f  %6.2fx\n",
                  cell.oracle.c_str(), cell.domain,
                  static_cast<unsigned long long>(cell.reports),
                  cell.per_report_rps, cell.columnar_rps, cell.speedup());
      cells.push_back(cell);
    }
    std::printf("\n");
  }

  if (!csv_path.empty()) {
    CsvWriter csv(csv_path, {"oracle", "domain", "reports", "per_report_rps",
                             "columnar_rps", "speedup"});
    for (const Cell& cell : cells) {
      csv.WriteRow(cell.oracle,
                   {static_cast<double>(cell.domain),
                    static_cast<double>(cell.reports), cell.per_report_rps,
                    cell.columnar_rps, cell.speedup()});
    }
  }

  // Acceptance record: the d=1024 row per oracle, plus the minimum speedup
  // across oracles at that domain (the "columnar ingest is >= 2x" claim).
  double min_speedup = 0.0;
  std::string line = "[throughput] threads=" + std::to_string(threads) +
                     " domain=1024 backend=" + fokernels::BackendName() +
                     " metrics=" + (metrics_on ? "1" : "0");
  char buf[128];
  for (const Cell& cell : cells) {
    if (cell.domain != 1024) continue;
    std::string key = cell.oracle;
    std::transform(key.begin(), key.end(), key.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    std::snprintf(buf, sizeof(buf),
                  " %s_per_report_rps=%.0f %s_columnar_rps=%.0f "
                  "%s_speedup=%.2f",
                  key.c_str(), cell.per_report_rps, key.c_str(),
                  cell.columnar_rps, key.c_str(), cell.speedup());
    line += buf;
    min_speedup =
        min_speedup == 0.0 ? cell.speedup() : std::min(min_speedup, cell.speedup());
  }
  std::snprintf(buf, sizeof(buf), " min_speedup=%.2f", min_speedup);
  line += buf;
  std::printf("%s\n", line.c_str());
  return 0;
}
