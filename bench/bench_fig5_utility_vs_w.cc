// Reproduces Fig. 5 (a)-(f): release accuracy (MRE) vs window size w at
// eps = 1, on all six datasets.
//
// Paper shape to verify: MRE grows with w for all methods; LBD degrades
// fastest (exponentially decaying budget) and can cross above LBU at large
// w; LBA stays below LBD; LPD/LPA's advantage over LPU widens with w.
#include <cstdio>
#include <iostream>

#include "analysis/runner.h"
#include "bench_common.h"
#include "core/factory.h"
#include "util/csv_writer.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace ldpids;
  const Flags flags(argc, argv);
  const std::string kTitle =
      "Fig. 5 — data utility (MRE) vs window size w, eps=1";
  if (bench::HandleHelp(flags, kTitle)) {
    return 0;
  }
  const double scale = flags.GetDouble("scale", 0.3);
  const int reps = bench::RepsFlag(flags, 2);
  const std::string fo = flags.GetString("fo", "GRR");
  const std::string csv_path = flags.GetString("csv", "");
  const std::size_t threads = bench::BenchThreads(flags);

  bench::PrintHeader(kTitle, scale);
  bench::ThroughputRecorder throughput(threads);
  const std::vector<std::size_t> windows = {10, 20, 30, 40, 50};
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path,
        std::vector<std::string>{"dataset", "method", "w", "mre", "mse"});
  }

  for (const auto& data : bench::MakeAllDatasets(scale)) {
    std::printf("dataset %s  (N=%llu, T=%zu, d=%zu)\n", data->name().c_str(),
                static_cast<unsigned long long>(data->num_users()),
                data->length(), data->domain());
    std::vector<std::string> header = {"method"};
    for (std::size_t w : windows) header.push_back("w=" + std::to_string(w));
    TablePrinter table(header);
    std::vector<MechanismConfig> configs;
    for (std::size_t w : windows) {
      MechanismConfig config;
      config.epsilon = 1.0;
      config.window = w;
      config.fo = fo;
      configs.push_back(config);
    }
    for (const std::string& method : AllMechanismNames()) {
      // SweepMechanism fans out the full (w x repetition) grid, so every
      // engine lane stays busy even at --reps=1.
      const std::vector<RunMetrics> cells = SweepMechanism(
          *data, method, configs, static_cast<std::size_t>(reps), threads);
      std::vector<double> row;
      for (std::size_t i = 0; i < windows.size(); ++i) {
        const RunMetrics& m = cells[i];
        row.push_back(m.mre);
        if (csv) {
          csv->WriteRow({data->name(), method, std::to_string(windows[i]),
                         FormatDouble(m.mre, 6), FormatDouble(m.mse, 8)});
        }
      }
      table.AddRow(method, row);
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  throughput.Print();
  return 0;
}
