// Reproduces Fig. 6 (a)-(d): impact of dataset parameters on MRE at
// eps = 1, w = 30.
//   (a) varying population N on LNS      (b) varying population N on Sin
//   (c) varying fluctuation sqrt(Q), LNS (d) varying period parameter b, Sin
//
// Paper shape to verify: MRE falls with N for every method; MRE grows with
// sqrt(Q) and with b; LSP is best at tiny fluctuation but is overtaken by
// LPD/LPA as fluctuation grows; budget division stays far above population
// division throughout.
#include <cstdio>
#include <iostream>

#include "analysis/runner.h"
#include "bench_common.h"
#include "core/factory.h"
#include "util/table_printer.h"

namespace {

using namespace ldpids;

MechanismConfig Fig6Config() {
  MechanismConfig c;
  c.epsilon = 1.0;
  c.window = 30;
  return c;
}

void RunPanel(const std::string& title,
              const std::vector<std::string>& column_labels,
              const std::vector<std::shared_ptr<StreamDataset>>& datasets,
              int reps, std::size_t threads) {
  std::printf("%s\n", title.c_str());
  // Warm every dataset's count cache before the parallel cells below.
  for (const auto& data : datasets) data->TrueStream();
  std::vector<std::string> header = {"method"};
  for (const auto& label : column_labels) header.push_back(label);
  TablePrinter table(header);
  for (const std::string& method : AllMechanismNames()) {
    const std::vector<RunMetrics> cells = bench::EvaluateCellsInParallel(
        threads, datasets.size(), [&](std::size_t i) {
          return EvaluateMechanism(*datasets[i], method, Fig6Config(),
                                   static_cast<std::size_t>(reps), threads);
        });
    std::vector<double> row;
    for (const RunMetrics& m : cells) row.push_back(m.mre);
    table.AddRow(method, row);
  }
  table.Print(std::cout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::string kTitle =
      "Fig. 6 — impact of dataset parameters (eps=1, w=30)";
  if (bench::HandleHelp(flags, kTitle)) {
    return 0;
  }
  const double scale = flags.GetDouble("scale", 0.3);
  const int reps = bench::RepsFlag(flags, 2);
  const std::size_t threads = bench::BenchThreads(flags);
  bench::PrintHeader(kTitle, scale);
  bench::ThroughputRecorder throughput(threads);
  const std::size_t t = bench::ScaledLength(scale);

  // (a)/(b): population sweep 10,20,40,80 x 10^4 (scaled).
  {
    const std::vector<uint64_t> populations = {100000, 200000, 400000, 800000};
    std::vector<std::string> labels;
    std::vector<std::shared_ptr<StreamDataset>> lns, sin;
    for (uint64_t n : populations) {
      const uint64_t sn = bench::ScaledUsers(scale, n);
      labels.push_back("N=" + std::to_string(sn));
      // Same probability sequence across N (paper: frequency kept fixed).
      lns.push_back(MakeLnsDataset(sn, t));
      sin.push_back(MakeSinDataset(sn, t));
    }
    RunPanel("(a) varying population N on LNS", labels, lns, reps,
             threads);
    RunPanel("(b) varying population N on Sin", labels, sin, reps,
             threads);
  }

  // (c): fluctuation sweep on LNS.
  {
    const std::vector<double> sqrt_qs = {0.001, 0.002, 0.004, 0.008};
    std::vector<std::string> labels;
    std::vector<std::shared_ptr<StreamDataset>> datasets;
    for (double q : sqrt_qs) {
      labels.push_back("sqrtQ=" + FormatDouble(q, 3));
      datasets.push_back(MakeLnsDataset(bench::ScaledUsers(scale), t, q));
    }
    RunPanel("(c) varying fluctuation sqrt(Q) on LNS", labels, datasets,
             reps, threads);
  }

  // (d): period parameter sweep on Sin.
  {
    const std::vector<double> bs = {1.0 / 200, 1.0 / 100, 1.0 / 50, 1.0 / 25};
    std::vector<std::string> labels;
    std::vector<std::shared_ptr<StreamDataset>> datasets;
    for (double b : bs) {
      labels.push_back("b=" + FormatDouble(b, 3));
      datasets.push_back(MakeSinDataset(bench::ScaledUsers(scale), t, b));
    }
    RunPanel("(d) varying period parameter b on Sin", labels, datasets,
             reps, threads);
  }
  throughput.Print();
  return 0;
}
