// Observability bench: per-stage pipeline latency distribution and the
// throughput cost of running the serving path with a live metrics
// registry.
//
// Three sections:
//   1. Metrics overhead — the end-to-end in-process serving path (LBU over
//      the fleet transport, adaptive shards) timed back to back with the
//      registry detached and attached. The acceptance gate is the on/off
//      ratio: scripts/check_bench_regression.py requires >= 0.95 (metrics
//      cost at most 5% of serving throughput).
//   2. Flight-recorder overhead — the same path with the metrics registry
//      AND the round-event flight recorder attached (7 ring events per
//      round). Gate: recorder_ratio (recorder-on vs metrics-only) >= 0.95.
//   3. Stage latencies — a fully instrumented networked run (loopback
//      socket, pipeline_depth=2 split transport, so stage overlap matches
//      a real deployment) reporting p50/p99 for all 8 pipeline stages from
//      the ldpids_stage_duration_ns histograms.
//
// The "[throughput]" line records rps_metrics_off / rps_metrics_on /
// metrics_ratio / rps_recorder_on / recorder_ratio plus
// stage_<name>_p50_ns / _p99_ns for every stage, which run_benches.sh
// parses into BENCH_obs_stages.json.
//
// Flags: --scale, --reps (best rep reported), --threads, --csv, --help.
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/factory.h"
#include "core/mechanism.h"
#include "fo/wire.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/stage_trace.h"
#include "service/client_fleet.h"
#include "service/session.h"
#include "transport/frame.h"
#include "transport/round_buffer.h"
#include "transport/socket.h"
#include "util/csv_writer.h"
#include "util/flags.h"

namespace {

using namespace ldpids;
using namespace ldpids::bench;
using service::ClientFleet;
using service::MechanismSession;
using service::RoundRequest;
using service::SessionOptions;
using transport::FrameDemux;
using transport::MakeBufferedSplitTransport;
using transport::RoundBuffer;
using transport::SendRoundFrames;
using transport::SocketClient;
using transport::SocketListener;

constexpr std::size_t kDomain = 64;
constexpr uint64_t kSessionId = 1;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

uint32_t TruthValue(uint64_t user, std::size_t t) {
  return static_cast<uint32_t>(HashCounter(31, user, t) % kDomain);
}

MechanismConfig ServeConfig() {
  MechanismConfig config;
  config.epsilon = 1.0;
  config.window = 8;
  config.fo = "GRR";
  config.seed = 17;
  return config;
}

// End-to-end in-process serving rate (accepted reports/sec, best rep),
// with or without a registry attached. Identical work either way — the
// instrumentation is write-only — so the ratio isolates the metrics cost.
double BestServingRate(uint64_t users, std::size_t timestamps,
                       std::size_t threads, int reps,
                       obs::MetricsRegistry* registry,
                       obs::FlightRecorder* recorder = nullptr) {
  const ClientFleet fleet(users, TruthValue, 77);
  double best = 0.0;
  for (int rep = 0; rep < std::max(1, reps); ++rep) {
    SessionOptions options;
    options.num_shards = 0;
    options.num_threads = threads;
    if (registry != nullptr) {
      options.metrics = registry;
      options.metrics_label = "inproc";
    }
    options.recorder = recorder;
    MechanismSession session(CreateMechanism("LBU", ServeConfig(), users),
                             kDomain, options, fleet.Transport(threads));
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t t = 0; t < timestamps; ++t) session.Advance();
    const double wall = Seconds(start);
    if (wall > 0.0) {
      best = std::max(
          best, static_cast<double>(session.stats().accepted) / wall);
    }
  }
  return best;
}

// One fully instrumented networked run: LBU over a loopback socket with
// the pipelined split transport, every layer feeding `registry` under the
// session label "serve". Exercises all 8 stages including frame_decode.
void InstrumentedSocketRun(uint64_t users, std::size_t timestamps,
                           std::size_t threads,
                           obs::MetricsRegistry* registry) {
  const ClientFleet fleet(users, TruthValue, 78);
  RoundBuffer buffer;
  buffer.AttachMetrics(registry, "serve");
  FrameDemux demux;
  demux.Register(kSessionId, &buffer);
  SocketListener listener(0, demux.Handler());
  listener.AttachMetrics(registry, "serve");
  SocketClient client(listener.port());

  SessionOptions options;
  options.num_shards = 0;
  options.num_threads = threads;
  options.pipeline_depth = 2;
  options.metrics = registry;
  options.metrics_label = "serve";
  auto announce = [&](const RoundRequest& request) {
    SendRoundFrames(client, kSessionId, request.round_index,
                    fleet.ProduceRound(request, threads));
  };
  {
    MechanismSession session(
        CreateMechanism("LBU", ServeConfig(), users), kDomain, options,
        MakeBufferedSplitTransport(buffer, announce, threads));
    for (std::size_t t = 0; t < timestamps; ++t) session.Advance();
    // Session teardown drains the in-flight prefetched round while the
    // socket is still up.
  }
  client.Close();
  listener.Stop();
}

struct StageRow {
  std::string name;
  uint64_t count = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (HandleHelp(flags,
                 "bench_obs_stages — metrics-registry overhead on the "
                 "serving path and p50/p99 latency per pipeline stage")) {
    return 0;
  }
  const double scale = BenchScale(flags);
  const std::size_t threads = BenchThreads(flags);
  const int reps = RepsFlag(flags, 3);
  const std::string csv_path = flags.GetString("csv", "");

  const uint64_t users = std::max<uint64_t>(400, ScaledUsers(scale, 60000));
  const std::size_t timestamps =
      std::max<std::size_t>(12, ScaledLength(scale, 96));

  PrintHeader("Observability: metrics overhead + stage latencies", scale);

  // --- section 1: metrics on/off serving throughput ---
  const double rps_off =
      BestServingRate(users, timestamps, threads, reps, nullptr);
  obs::MetricsRegistry overhead_registry;
  const double rps_on =
      BestServingRate(users, timestamps, threads, reps, &overhead_registry);
  const double ratio = rps_off > 0.0 ? rps_on / rps_off : 0.0;
  // Recorder on top of metrics: isolates the flight-recorder ring cost
  // (vs the metrics-on rate, not the bare rate — the recorder is always
  // deployed alongside the registry).
  obs::MetricsRegistry recorder_registry;
  obs::FlightRecorder flight_recorder;
  const double rps_recorder = BestServingRate(
      users, timestamps, threads, reps, &recorder_registry, &flight_recorder);
  const double recorder_ratio = rps_on > 0.0 ? rps_recorder / rps_on : 0.0;
  std::printf(
      "serving throughput (LBU x %zu timestamps, %llu users/round):\n"
      "  metrics off:          %12.0f reports/s\n"
      "  metrics on:           %12.0f reports/s   (ratio %.3f)\n"
      "  metrics + recorder:   %12.0f reports/s   (recorder ratio %.3f)\n",
      timestamps, static_cast<unsigned long long>(users), rps_off, rps_on,
      ratio, rps_recorder, recorder_ratio);

  // --- section 2: stage latency distribution, networked + pipelined ---
  obs::MetricsRegistry registry;
  InstrumentedSocketRun(users, timestamps, threads, &registry);
  const obs::MetricsSnapshot snap = registry.Snapshot();
  std::vector<StageRow> rows;
  std::printf(
      "\nstage latencies over the socket path (pipeline_depth=2):\n"
      "  stage           count      p50          p99\n");
  for (std::size_t s = 0; s < obs::kNumStages; ++s) {
    const char* name = obs::StageName(static_cast<obs::Stage>(s));
    const obs::HistogramSample* h = snap.FindHistogram(
        obs::kStageDurationMetric, {{"session", "serve"}, {"stage", name}});
    StageRow row;
    row.name = name;
    if (h != nullptr) {
      row.count = h->count;
      row.p50_ns = h->Quantile(0.50);
      row.p99_ns = h->Quantile(0.99);
    }
    std::printf("  %-13s %7llu  %8.1fus   %8.1fus\n", name,
                static_cast<unsigned long long>(row.count),
                static_cast<double>(row.p50_ns) / 1e3,
                static_cast<double>(row.p99_ns) / 1e3);
    rows.push_back(std::move(row));
  }

  if (!csv_path.empty()) {
    CsvWriter csv(csv_path, {"stage", "count", "p50_ns", "p99_ns"});
    for (const StageRow& row : rows) {
      csv.WriteRow(row.name, {static_cast<double>(row.count),
                              static_cast<double>(row.p50_ns),
                              static_cast<double>(row.p99_ns)});
    }
  }

  std::string line;
  char buf[240];
  std::snprintf(buf, sizeof(buf),
                "[throughput] threads=%zu users=%llu timestamps=%zu "
                "rps_metrics_off=%.0f rps_metrics_on=%.0f metrics_ratio=%.3f "
                "rps_recorder_on=%.0f recorder_ratio=%.3f",
                threads, static_cast<unsigned long long>(users), timestamps,
                rps_off, rps_on, ratio, rps_recorder, recorder_ratio);
  line += buf;
  for (const StageRow& row : rows) {
    std::snprintf(buf, sizeof(buf),
                  " stage_%s_p50_ns=%llu stage_%s_p99_ns=%llu",
                  row.name.c_str(),
                  static_cast<unsigned long long>(row.p50_ns),
                  row.name.c_str(),
                  static_cast<unsigned long long>(row.p99_ns));
    line += buf;
  }
  std::printf("\n%s\n", line.c_str());
  return 0;
}
