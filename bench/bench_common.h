// Shared setup for the figure/table reproduction binaries.
//
// Every bench accepts:
//   --scale=S    (or LDPIDS_SCALE=S)  multiply N and T by S in (0, 1]
//   --reps=R     repetitions per cell (default 3 synthetic / 2 real-like)
//   --fo=NAME    frequency oracle (default GRR, as in the paper)
//   --threads=K  parallel evaluation lanes (default: all hardware threads);
//                results are bit-identical for every K
//   --csv=PATH   also dump the series as CSV
//
// At scale 1 the datasets match the paper exactly: LNS/Sin/Log with
// N = 200,000, T = 800; Taxi/Foursquare/Taobao with the shapes of §7.1.2.
#ifndef LDPIDS_BENCH_BENCH_COMMON_H_
#define LDPIDS_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/runner.h"
#include "datagen/realworld_sim.h"
#include "datagen/synthetic.h"
#include "stream/dataset.h"
#include "util/flags.h"
#include "util/thread_pool.h"

namespace ldpids::bench {

inline uint64_t ScaledUsers(double scale, uint64_t n = 200000) {
  return std::max<uint64_t>(200, static_cast<uint64_t>(n * scale));
}

inline std::size_t ScaledLength(double scale, std::size_t t = 800) {
  return std::max<std::size_t>(60, static_cast<std::size_t>(t * scale));
}

// The paper's three synthetic datasets at the given scale.
inline std::vector<std::shared_ptr<StreamDataset>> MakeSyntheticDatasets(
    double scale) {
  const uint64_t n = ScaledUsers(scale);
  const std::size_t t = ScaledLength(scale);
  return {MakeLnsDataset(n, t), MakeSinDataset(n, t), MakeLogDataset(n, t)};
}

// The three real-world-like datasets at the given scale.
inline std::vector<std::shared_ptr<StreamDataset>> MakeRealWorldDatasets(
    double scale) {
  RealWorldSimOptions o;
  o.scale = scale;
  return {MakeTaxiLikeDataset(o), MakeFoursquareLikeDataset(o),
          MakeTaobaoLikeDataset(o)};
}

// All six evaluation datasets in the paper's order.
inline std::vector<std::shared_ptr<StreamDataset>> MakeAllDatasets(
    double scale) {
  auto datasets = MakeSyntheticDatasets(scale);
  for (auto& d : MakeRealWorldDatasets(scale)) datasets.push_back(d);
  return datasets;
}

// Evaluation-engine thread count: --threads / LDPIDS_THREADS, defaulting to
// every hardware thread. Rejects 0, negatives and malformed values with the
// standard flag error.
inline std::size_t BenchThreads(const Flags& flags) {
  return ThreadCountFlag(flags, HardwareThreads());
}

// Repetitions per cell: --reps / LDPIDS_REPS, clamped at zero so a negative
// value degrades to the historical no-op sweep instead of wrapping around
// in the size_t casts downstream.
inline int RepsFlag(const Flags& flags, int def) {
  return static_cast<int>(
      std::max<int64_t>(0, flags.GetInt("reps", def)));
}

// Evaluates the `cells` independent cells of one table row concurrently and
// returns the metrics in cell order, so tables and CSV dumps stay
// deterministic. For rows whose cells differ in *dataset* (fig6/fig8/
// table2) this is what keeps --threads effective at --reps=1, where
// EvaluateMechanism's internal repetition fan-out has nothing to spread
// (nested engine calls run inline on the cell's thread); rows whose cells
// differ only in config should prefer SweepMechanism, which fans out the
// full grid. Dataset caches are thread-safe, but warming them first
// (data->TrueStream()) avoids serializing the cells on first access.
inline std::vector<RunMetrics> EvaluateCellsInParallel(
    std::size_t threads, std::size_t cells,
    const std::function<RunMetrics(std::size_t)>& cell) {
  std::vector<RunMetrics> out(cells);
  ParallelFor(threads, cells, [&](std::size_t i) { out[i] = cell(i); });
  return out;
}

inline void PrintHeader(const std::string& title, double scale) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("(scale=%.3g; pass --scale=0.1 for a quick run)\n\n", scale);
}

// Fans a bench's repetitions out across threads into per-rep result slots,
// guarding non-positive reps down to the historical no-op loop. The caller
// reduces the returned slots in fixed repetition order, which is what keeps
// the printed tables bit-identical at every thread count. Sibling of
// EvaluateCellsInParallel for benches whose per-rep payload is bespoke
// (ROC curves, smoothed runs, mean metrics).
template <typename Result>
inline std::vector<Result> ParallelReps(
    std::size_t threads, int reps,
    const std::function<Result(std::size_t)>& rep_fn) {
  const std::size_t rep_count = reps > 0 ? static_cast<std::size_t>(reps) : 0;
  std::vector<Result> out(rep_count);
  ParallelFor(threads, rep_count,
              [&](std::size_t rep) { out[rep] = rep_fn(rep); });
  return out;
}

// Records wall-time and mechanism-run throughput over a bench and prints
// one machine-parseable line that scripts/run_benches.sh folds into the
// BENCH_*.json trajectory record. The window is end-to-end — construction
// (right after flag parsing) to Print() — so it includes dataset generation
// and cache warming; that keeps the metric's definition identical across
// PRs, and bench_micro carries the isolated engine/oracle numbers.
// Mechanism runs are counted via the engine's global RunMechanism counter;
// work that bypasses RunMechanism (the CDP baselines, the mean-stream
// extension) reports itself through AddRuns().
class ThroughputRecorder {
 public:
  explicit ThroughputRecorder(std::size_t threads)
      : threads_(threads),
        start_(std::chrono::steady_clock::now()),
        start_runs_(TotalMechanismRunCount()) {}

  void AddRuns(uint64_t runs) { extra_runs_ += runs; }

  void Print() const {
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const uint64_t runs =
        TotalMechanismRunCount() - start_runs_ + extra_runs_;
    std::printf(
        "\n[throughput] threads=%zu mechanism_runs=%llu wall_s=%.3f "
        "runs_per_s=%.3f\n",
        threads_, static_cast<unsigned long long>(runs), wall_s,
        wall_s > 0.0 ? static_cast<double>(runs) / wall_s : 0.0);
  }

 private:
  std::size_t threads_;
  std::chrono::steady_clock::time_point start_;
  uint64_t start_runs_;
  uint64_t extra_runs_ = 0;
};

// Prints usage and returns true when --help was passed, so bench mains can
// exit 0 instead of launching a full paper-scale sweep.
inline bool HandleHelp(const Flags& flags, const std::string& title) {
  if (!flags.GetBool("help", false)) return false;
  std::printf("%s\n\n", title.c_str());
  std::printf(
      "Common flags (each also settable via the LDPIDS_<NAME> env var; not\n"
      "every bench reads every flag — see the bench's source header):\n"
      "  --scale=S    multiply population and stream length by S\n"
      "               (e.g. 0.1 for a quick run; 1 is the paper-sized sweep)\n"
      "  --reps=R     repetitions per configuration cell\n"
      "  --fo=NAME    frequency oracle: GRR | OUE | SUE | OLH | HR\n"
      "  --threads=K  parallel evaluation lanes (default: all hardware\n"
      "               threads; results are bit-identical for every K)\n"
      "  --csv=PATH   also dump the result series as CSV (where supported)\n"
      "  --help       show this message and exit\n");
  return true;
}

}  // namespace ldpids::bench

#endif  // LDPIDS_BENCH_BENCH_COMMON_H_
