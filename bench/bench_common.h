// Shared setup for the figure/table reproduction binaries.
//
// Every bench accepts:
//   --scale=S   (or LDPIDS_SCALE=S)  multiply N and T by S in (0, 1]
//   --reps=R    repetitions per cell (default 3 synthetic / 2 real-like)
//   --fo=NAME   frequency oracle (default GRR, as in the paper)
//   --csv=PATH  also dump the series as CSV
//
// At scale 1 the datasets match the paper exactly: LNS/Sin/Log with
// N = 200,000, T = 800; Taxi/Foursquare/Taobao with the shapes of §7.1.2.
#ifndef LDPIDS_BENCH_BENCH_COMMON_H_
#define LDPIDS_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "datagen/realworld_sim.h"
#include "datagen/synthetic.h"
#include "stream/dataset.h"
#include "util/flags.h"

namespace ldpids::bench {

inline uint64_t ScaledUsers(double scale, uint64_t n = 200000) {
  return std::max<uint64_t>(200, static_cast<uint64_t>(n * scale));
}

inline std::size_t ScaledLength(double scale, std::size_t t = 800) {
  return std::max<std::size_t>(60, static_cast<std::size_t>(t * scale));
}

// The paper's three synthetic datasets at the given scale.
inline std::vector<std::shared_ptr<StreamDataset>> MakeSyntheticDatasets(
    double scale) {
  const uint64_t n = ScaledUsers(scale);
  const std::size_t t = ScaledLength(scale);
  return {MakeLnsDataset(n, t), MakeSinDataset(n, t), MakeLogDataset(n, t)};
}

// The three real-world-like datasets at the given scale.
inline std::vector<std::shared_ptr<StreamDataset>> MakeRealWorldDatasets(
    double scale) {
  RealWorldSimOptions o;
  o.scale = scale;
  return {MakeTaxiLikeDataset(o), MakeFoursquareLikeDataset(o),
          MakeTaobaoLikeDataset(o)};
}

// All six evaluation datasets in the paper's order.
inline std::vector<std::shared_ptr<StreamDataset>> MakeAllDatasets(
    double scale) {
  auto datasets = MakeSyntheticDatasets(scale);
  for (auto& d : MakeRealWorldDatasets(scale)) datasets.push_back(d);
  return datasets;
}

inline void PrintHeader(const std::string& title, double scale) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("(scale=%.3g; pass --scale=0.1 for a quick run)\n\n", scale);
}

// Prints usage and returns true when --help was passed, so bench mains can
// exit 0 instead of launching a full paper-scale sweep.
inline bool HandleHelp(const Flags& flags, const std::string& title) {
  if (!flags.GetBool("help", false)) return false;
  std::printf("%s\n\n", title.c_str());
  std::printf(
      "Common flags (each also settable via the LDPIDS_<NAME> env var; not\n"
      "every bench reads every flag — see the bench's source header):\n"
      "  --scale=S   multiply population and stream length by S\n"
      "              (e.g. 0.1 for a quick run; 1 is the paper-sized sweep)\n"
      "  --reps=R    repetitions per configuration cell\n"
      "  --fo=NAME   frequency oracle: GRR | OUE | SUE | OLH | HR\n"
      "  --csv=PATH  also dump the result series as CSV (where supported)\n"
      "  --help      show this message and exit\n");
  return true;
}

}  // namespace ldpids::bench

#endif  // LDPIDS_BENCH_BENCH_COMMON_H_
