// Pipelined vs serial serving: end-to-end releases/sec of one mechanism
// session when round t+1's ingestion overlaps round t's estimation.
//
// The client/network edge is modeled by a fleet thread with a configurable
// round-trip (--rtt-us, default 2000): an announced round's packets arrive
// that long after the announcement, exactly like devices answering a
// control-plane push. The serial path (pipeline_depth=1) pays the
// round-trip inline for every FO round; the pipelined path announces the
// mechanism's planned round early (PlanNextCollect), so the next round's
// production + transit + folding runs under the current round's estimate
// and the round-trips of a timestamp's publication round and the next
// timestamp's dissimilarity round overlap. Releases are bit-identical
// either way (pinned in pipeline_test); this bench records the wall-clock
// consequence. --rtt-us=0 isolates the pure CPU overlap (on a single
// hardware thread the two stages share one core, so expect parity there,
// not speedup).
//
// Flags: --scale, --reps (best rep kept), --threads, --rtt-us,
// --connections (highest K of the {1,2,4} sweep: the fleet stripes each
// round's frames across K senders feeding the same RoundBuffer, modeling
// multi-connection delivery; releases stay bit-identical at every K),
// --csv, --help. The "[throughput]" line records serial vs pipelined
// releases/sec (and reports/sec under overlap) plus the pipelined rate at
// each swept connection count for BENCH_pipeline.json.
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/factory.h"
#include "core/mechanism.h"
#include "service/client_fleet.h"
#include "service/session.h"
#include "transport/frame.h"
#include "transport/round_buffer.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/rng.h"

namespace {

using namespace ldpids;
using namespace ldpids::bench;
using service::ClientFleet;
using service::MechanismSession;
using service::RoundRequest;
using service::SessionOptions;
using transport::Frame;
using transport::MakeBufferedSplitTransport;
using transport::RoundBuffer;
using transport::SendRoundFrames;

constexpr std::size_t kDomain = 32;
constexpr uint64_t kSessionId = 1;

uint32_t TruthValue(uint64_t user, std::size_t t) {
  return static_cast<uint32_t>(HashCounter(29, user, t) % kDomain);
}

MechanismConfig PipeConfig() {
  MechanismConfig config;
  config.epsilon = 1.0;
  config.window = 4;
  config.fo = "GRR";
  config.seed = 17;
  return config;
}

// Delivers frames straight into a RoundBuffer (the bench isolates the
// pipeline from socket costs; bench_transport covers the codec/socket).
class BufferSender final : public transport::FrameSender {
 public:
  explicit BufferSender(RoundBuffer& buffer) : buffer_(buffer) {}
  void Send(const Frame& frame) override {
    Frame copy = frame;
    buffer_.Deliver(std::move(copy));
  }

 private:
  RoundBuffer& buffer_;
};

// The client/network edge: each announced round's packets are produced and
// delivered into the RoundBuffer one round-trip after the announcement.
// Deadlines are taken at announce time, so the round-trips of rounds
// announced close together elapse concurrently — latency, not occupancy.
class LatentFleet {
 public:
  LatentFleet(const ClientFleet& fleet, RoundBuffer& buffer,
              std::chrono::microseconds rtt, std::size_t connections)
      : fleet_(fleet), rtt_(rtt) {
    for (std::size_t c = 0; c < std::max<std::size_t>(1, connections); ++c) {
      senders_.push_back(std::make_unique<BufferSender>(buffer));
      sender_ptrs_.push_back(senders_.back().get());
    }
    worker_ = std::thread([this] { Loop(); });
  }

  ~LatentFleet() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }

  // Session thread; cheap (posts the descriptor). The request is copied —
  // planned rounds are whole-population, so no cohort pointer escapes.
  void Announce(const RoundRequest& request) {
    Pending pending;
    pending.request = request;
    pending.deadline = std::chrono::steady_clock::now() + rtt_;
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(pending);
    }
    cv_.notify_all();
  }

 private:
  struct Pending {
    RoundRequest request;
    std::chrono::steady_clock::time_point deadline;
  };

  void Loop() {
    for (;;) {
      Pending pending;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;
        pending = std::move(queue_.front());
        queue_.pop_front();
      }
      std::this_thread::sleep_until(pending.deadline);
      SendRoundFrames(sender_ptrs_, kSessionId, pending.request.round_index,
                      fleet_.ProduceRound(pending.request, 1));
    }
  }

  const ClientFleet& fleet_;
  std::vector<std::unique_ptr<BufferSender>> senders_;
  std::vector<transport::FrameSender*> sender_ptrs_;
  const std::chrono::microseconds rtt_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  std::thread worker_;
};

struct PipeRun {
  std::size_t depth = 0;
  double wall_s = 0.0;
  uint64_t releases = 0;
  uint64_t reports = 0;

  double releases_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(releases) / wall_s : 0.0;
  }
  double reports_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(reports) / wall_s : 0.0;
  }
};

// One full session run at the given pipeline depth; best of `reps`.
PipeRun RunOnce(uint64_t users, std::size_t timestamps, std::size_t depth,
                std::chrono::microseconds rtt, std::size_t shards,
                std::size_t threads, std::size_t connections) {
  const ClientFleet fleet(users, TruthValue, 2026);
  // The whole recording fits the default admission window comfortably,
  // but a prefetched round is one ahead of the drain point by design.
  RoundBuffer buffer;
  LatentFleet edge(fleet, buffer, rtt, connections);

  SessionOptions options;
  options.num_shards = shards;
  options.num_threads = threads;
  options.pipeline_depth = depth;

  PipeRun run;
  run.depth = depth;
  const auto start = std::chrono::steady_clock::now();
  {
    MechanismSession session(
        CreateMechanism("LBA", PipeConfig(), users), kDomain, options,
        MakeBufferedSplitTransport(
            buffer, [&](const RoundRequest& r) { edge.Announce(r); },
            threads));
    for (std::size_t t = 0; t < timestamps; ++t) {
      session.Advance();
    }
    run.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    run.releases = timestamps;
    run.reports = session.stats().accepted;
    // The session destructor drains the final prefetched round; that
    // tail is deliberately outside the timed window (steady state is
    // what the pipeline changes).
  }
  return run;
}

PipeRun BestOf(int reps, uint64_t users, std::size_t timestamps,
               std::size_t depth, std::chrono::microseconds rtt,
               std::size_t shards, std::size_t threads,
               std::size_t connections = 1) {
  PipeRun best;
  for (int rep = 0; rep < std::max(1, reps); ++rep) {
    PipeRun run = RunOnce(users, timestamps, depth, rtt, shards, threads,
                          connections);
    if (best.depth == 0 || run.wall_s < best.wall_s) best = run;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (HandleHelp(flags,
                 "bench_pipeline — serial vs pipelined mechanism session: "
                 "end-to-end releases/sec with a simulated client "
                 "round-trip (--rtt-us)")) {
    return 0;
  }
  const double scale = BenchScale(flags);
  const std::size_t threads = BenchThreads(flags);
  const int reps = RepsFlag(flags, 2);
  const std::string csv_path = flags.GetString("csv", "");
  const int64_t rtt_us_flag = flags.GetInt("rtt-us", 2000);
  if (rtt_us_flag < 0) {
    std::fprintf(stderr, "error: --rtt-us must be >= 0, got %lld\n",
                 static_cast<long long>(rtt_us_flag));
    return 2;
  }
  const int64_t connections_flag = flags.GetInt("connections", 4);
  if (connections_flag < 1) {
    std::fprintf(stderr, "error: --connections must be >= 1, got %lld\n",
                 static_cast<long long>(connections_flag));
    return 2;
  }
  const auto rtt = std::chrono::microseconds(rtt_us_flag);

  const uint64_t users = ScaledUsers(scale, 20000);
  const std::size_t timestamps = std::max<std::size_t>(
      16, ScaledLength(scale, 96));
  const std::size_t shards = 2;

  PrintHeader("Async release pipeline (LBA + GRR, releases/sec)", scale);
  std::printf("%llu users, %zu timestamps, rtt=%lldus, %zu shards\n\n",
              static_cast<unsigned long long>(users), timestamps,
              static_cast<long long>(rtt_us_flag), shards);

  std::printf("rtt_us   depth   wall_s   releases/sec   reports/sec\n");
  std::vector<PipeRun> runs;
  std::vector<int64_t> run_rtts;
  for (const int64_t case_rtt_us : {rtt_us_flag, int64_t{0}}) {
    for (const std::size_t depth : {std::size_t{1}, std::size_t{2}}) {
      const PipeRun run =
          BestOf(reps, users, timestamps, depth,
                 std::chrono::microseconds(case_rtt_us), shards, threads);
      std::printf("%6lld  %6zu  %7.3f  %13.1f  %12.0f\n",
                  static_cast<long long>(case_rtt_us), run.depth, run.wall_s,
                  run.releases_per_s(), run.reports_per_s());
      runs.push_back(run);
      run_rtts.push_back(case_rtt_us);
    }
  }

  const PipeRun& serial = runs[0];
  const PipeRun& pipelined = runs[1];
  const PipeRun& serial_nortt = runs[2];
  const PipeRun& pipelined_nortt = runs[3];
  std::printf("\noverlap win at rtt=%lldus: %.2fx releases/sec "
              "(%.1f -> %.1f)\n",
              static_cast<long long>(rtt_us_flag),
              serial.releases_per_s() > 0.0
                  ? pipelined.releases_per_s() / serial.releases_per_s()
                  : 0.0,
              serial.releases_per_s(), pipelined.releases_per_s());

  // Multi-connection sweep at the pipelined depth: the fleet stripes each
  // round across K senders; rates should hold and releases are pinned
  // bit-identical by transport_test, so this only records the cost curve.
  std::vector<std::size_t> sweep;
  for (const std::size_t k : {std::size_t{2}, std::size_t{4}}) {
    if (k <= static_cast<std::size_t>(connections_flag)) sweep.push_back(k);
  }
  std::vector<PipeRun> sweep_runs;
  if (!sweep.empty()) {
    std::printf("\npipelined (depth 2) across striped connections:\n");
    std::printf("  conns=1: %13.1f releases/sec\n",
                pipelined.releases_per_s());
    for (const std::size_t k : sweep) {
      sweep_runs.push_back(BestOf(reps, users, timestamps, /*depth=*/2, rtt,
                                  shards, threads, k));
      std::printf("  conns=%zu: %13.1f releases/sec\n", k,
                  sweep_runs.back().releases_per_s());
    }
  }

  if (!csv_path.empty()) {
    CsvWriter csv(csv_path, {"rtt_us", "depth", "wall_s", "releases_per_s",
                             "reports_per_s"});
    for (std::size_t i = 0; i < runs.size(); ++i) {
      csv.WriteRow(std::to_string(run_rtts[i]),
                   {static_cast<double>(runs[i].depth), runs[i].wall_s,
                    runs[i].releases_per_s(), runs[i].reports_per_s()});
    }
  }

  std::string per_connection;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    char key[64];
    std::snprintf(key, sizeof(key), " pipelined_rps_c%zu=%.1f", sweep[i],
                  sweep_runs[i].releases_per_s());
    per_connection += key;
  }
  std::printf(
      "\n[throughput] threads=%zu connections=%lld rtt_us=%lld "
      "serial_rps=%.1f pipelined_rps=%.1f speedup=%.3f "
      "serial_reports_per_s=%.0f pipelined_reports_per_s=%.0f "
      "serial_rps_rtt0=%.1f pipelined_rps_rtt0=%.1f%s\n",
      threads, static_cast<long long>(connections_flag),
      static_cast<long long>(rtt_us_flag), serial.releases_per_s(),
      pipelined.releases_per_s(),
      serial.releases_per_s() > 0.0
          ? pipelined.releases_per_s() / serial.releases_per_s()
          : 0.0,
      serial.reports_per_s(), pipelined.reports_per_s(),
      serial_nortt.releases_per_s(), pipelined_nortt.releases_per_s(),
      per_connection.c_str());
  return 0;
}
