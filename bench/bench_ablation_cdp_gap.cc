// Ablation: the CDP -> LDP utility gap that motivates the paper (Sections
// 1-2). With a trusted aggregator, Kellaris-style budget division (BD/BA)
// is cheap: Laplace variance degrades only quadratically in the budget.
// Without one, the LDP analogues LBD/LBA pay roughly exponentially — which
// is exactly why LDP-IDS switches to population division (LPD/LPA).
//
// The table prints end-to-end MSE of all three tiers on the same LNS
// stream; expect CDP << LDP-population << LDP-budget.
#include <cstdio>
#include <iostream>

#include "analysis/metrics.h"
#include "analysis/runner.h"
#include "bench_common.h"
#include "cdp/baselines.h"
#include "core/factory.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace ldpids;
  const Flags flags(argc, argv);
  const std::string kTitle =
      "Ablation — CDP vs LDP utility gap (LNS, w=20)";
  if (bench::HandleHelp(flags, kTitle)) {
    return 0;
  }
  const double scale = flags.GetDouble("scale", 0.3);
  const int reps = bench::RepsFlag(flags, 2);
  const std::size_t threads = bench::BenchThreads(flags);
  bench::PrintHeader(kTitle, scale);
  bench::ThroughputRecorder throughput(threads);

  const auto data = MakeLnsDataset(bench::ScaledUsers(scale),
                                   bench::ScaledLength(scale));
  const auto truth = data->TrueStream();

  TablePrinter table({"tier", "method", "eps=0.5 MSE", "eps=1 MSE",
                      "eps=2 MSE"});
  const std::vector<double> epsilons = {0.5, 1.0, 2.0};

  // CDP tier (trusted aggregator, Laplace).
  for (const std::string name : {"Uniform", "BD", "BA"}) {
    std::vector<double> row;
    for (double eps : epsilons) {
      double total = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        CdpConfig c;
        c.epsilon = eps;
        c.window = 20;
        c.num_users = data->num_users();
        c.seed = 1000 + static_cast<uint64_t>(rep);
        auto m = CreateCdpMechanism(name, c);
        total += MeanSquaredError(truth, m->Run(truth));
      }
      row.push_back(total / reps);
    }
    std::vector<std::string> cells = {"CDP", name};
    for (double v : row) cells.push_back(FormatDouble(v, 9));
    table.AddRow(cells);
  }

  // LDP tiers.
  for (const std::string name : {"LBU", "LBD", "LBA", "LPU", "LPD", "LPA"}) {
    std::vector<std::string> cells = {
        name[1] == 'B' ? "LDP-budget" : "LDP-population", name};
    for (double eps : epsilons) {
      MechanismConfig c;
      c.epsilon = eps;
      c.window = 20;
      cells.push_back(FormatDouble(
          EvaluateMechanism(*data, name, c, static_cast<std::size_t>(reps),
                            threads)
              .mse,
          9));
    }
    table.AddRow(cells);
  }
  table.Print(std::cout);
  throughput.AddRuns(static_cast<uint64_t>(reps) * 9);  // CDP tier runs
  throughput.Print();
  return 0;
}
