// Transport-layer throughput: frame codec rates and the end-to-end
// networked serving path.
//
// Three sections:
//   1. Frame codec — encode and streaming-decode rates (frames/sec and
//      MB/sec) over an in-memory stream of realistically sized frames
//      (one wire report per frame), decoded in socket-read-sized chunks.
//   2. Socket loopback — a full round trip: fleet packets -> frames ->
//      SocketClient -> SocketListener -> RoundBuffer -> sharded ingest,
//      measuring delivered frames/sec across the real TCP loopback.
//   3. End-to-end serving — a MechanismSession advanced over the socket
//      transport (clients -> frames -> RoundBuffer -> shards -> release),
//      measuring reports/sec of the whole networked path.
//
// Flags: --scale (population multiplier), --reps (best rep reported),
// --threads, --connections (highest K of the {1,2,4} socket-connection
// sweep; the round's frames are striped across K loopback connections and
// reassembled by the RoundBuffer's distinct-packet accounting), --depth
// (highest pipeline depth of the serving matrix: section 3 sweeps
// connections x depth in {1,2}, recording serve_reports_per_s_cK_dD per
// cell — on a 1-core host this measures overhead, not scaling), --csv,
// --help. The "[throughput]" line records frames/sec (codec decode),
// socket frames/sec at each swept connection count and end-to-end
// reports/sec for BENCH_transport.json (scripts/run_benches.sh).
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/factory.h"
#include "core/mechanism.h"
#include "fo/wire.h"
#include "service/client_fleet.h"
#include "service/session.h"
#include "transport/frame.h"
#include "transport/round_buffer.h"
#include "transport/socket.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/rng.h"

namespace {

using namespace ldpids;
using namespace ldpids::bench;
using service::ClientFleet;
using service::MechanismSession;
using service::RoundRequest;
using service::SessionOptions;
using transport::Frame;
using transport::FrameDecoder;
using transport::FrameDemux;
using transport::MakeBufferedTransport;
using transport::MakeDataFrame;
using transport::RoundBuffer;
using transport::SendRoundFrames;
using transport::SocketClient;
using transport::SocketListener;

constexpr std::size_t kDomain = 64;
constexpr double kEpsilon = 1.0;
constexpr uint64_t kSessionId = 1;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

uint32_t TruthValue(uint64_t user, std::size_t t) {
  return static_cast<uint32_t>(HashCounter(13, user, t) % kDomain);
}

struct CodecCell {
  uint64_t frames = 0;
  uint64_t bytes = 0;
  double encode_frames_per_s = 0.0;
  double decode_frames_per_s = 0.0;
};

// One round of GRR-report-sized frames encoded into a stream, then decoded
// through the streaming decoder in 64 KiB chunks (what a socket read
// hands the server).
CodecCell BenchCodec(std::size_t num_frames, int reps) {
  const ClientFleet fleet(num_frames, TruthValue, 97);
  RoundRequest request;
  request.epsilon = kEpsilon;
  request.domain = kDomain;
  request.oracle = OracleId::kGrr;
  const auto packets = fleet.ProduceRound(request, 1);

  CodecCell cell;
  cell.frames = num_frames;
  for (int rep = 0; rep < std::max(1, reps); ++rep) {
    std::vector<uint8_t> stream;
    stream.reserve(num_frames *
                   transport::EncodedFrameSize(packets[0].size()));
    auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < num_frames; ++i) {
      transport::AppendEncodedFrame(MakeDataFrame(kSessionId, 0, packets[i]),
                                    &stream);
    }
    const double encode_wall = Seconds(start);
    cell.bytes = stream.size();

    FrameDecoder decoder;
    Frame frame;
    uint64_t decoded = 0;
    constexpr std::size_t kChunk = 64 * 1024;
    start = std::chrono::steady_clock::now();
    for (std::size_t off = 0; off < stream.size(); off += kChunk) {
      decoder.Append(stream.data() + off,
                     std::min(kChunk, stream.size() - off));
      while (decoder.Next(&frame)) ++decoded;
    }
    const double decode_wall = Seconds(start);
    if (decoded != num_frames || decoder.stats().errors() != 0) {
      std::fprintf(stderr, "codec bench lost frames: %s\n",
                   decoder.stats().ToString().c_str());
      std::exit(1);
    }
    const double n = static_cast<double>(num_frames);
    if (encode_wall > 0.0) {
      cell.encode_frames_per_s =
          std::max(cell.encode_frames_per_s, n / encode_wall);
    }
    if (decode_wall > 0.0) {
      cell.decode_frames_per_s =
          std::max(cell.decode_frames_per_s, n / decode_wall);
    }
  }
  return cell;
}

struct SocketCell {
  uint64_t frames = 0;
  double frames_per_s = 0.0;
  double mb_per_s = 0.0;
};

// Pushes one round's frames through the real loopback socket into a
// RoundBuffer and waits for full delivery (the end-of-round marker plus
// count is the flow control, exactly like serving). With `connections` > 1
// the frames are striped round-robin across that many client connections.
SocketCell BenchSocketLoopback(std::size_t num_frames, int reps,
                               std::size_t connections) {
  const ClientFleet fleet(num_frames, TruthValue, 98);
  RoundRequest request;
  request.epsilon = kEpsilon;
  request.domain = kDomain;
  request.oracle = OracleId::kGrr;
  const auto packets = fleet.ProduceRound(request, 1);

  SocketCell cell;
  cell.frames = num_frames;
  for (int rep = 0; rep < std::max(1, reps); ++rep) {
    transport::RoundBufferOptions options;
    options.round_deadline = std::chrono::milliseconds(60000);
    RoundBuffer buffer(options);
    FrameDemux demux;
    demux.Register(kSessionId, &buffer);
    SocketListener listener(0, demux.Handler());
    std::vector<std::unique_ptr<SocketClient>> clients;
    std::vector<transport::FrameSender*> senders;
    for (std::size_t c = 0; c < connections; ++c) {
      clients.push_back(std::make_unique<SocketClient>(listener.port()));
      senders.push_back(clients.back().get());
    }
    uint64_t bytes = 0;
    const auto start = std::chrono::steady_clock::now();
    SendRoundFrames(senders, kSessionId, 0, packets);
    const auto delivered = buffer.TakeRound(0);
    const double wall = Seconds(start);
    for (auto& client : clients) {
      bytes += client->bytes_sent();
      client->Close();
    }
    listener.Stop();
    if (delivered.size() != num_frames) {
      std::fprintf(stderr, "socket bench lost frames: %zu of %zu\n",
                   delivered.size(), num_frames);
      std::exit(1);
    }
    // Cross-check the striping: the per-connection decoder stats must sum
    // (FrameStats::operator+=) to exactly the listener's aggregate, with
    // every frame accounted for and no decode errors on any connection.
    transport::FrameStats summed;
    for (const transport::FrameStats& conn : listener.connection_stats()) {
      summed += conn;
    }
    const transport::FrameStats aggregate = listener.stats();
    if (summed.total() != aggregate.total() ||
        summed.data_frames != num_frames || summed.errors() != 0) {
      std::fprintf(stderr,
                   "socket bench per-connection stats mismatch:\n"
                   "  summed:    %s\n  aggregate: %s\n",
                   summed.ToString().c_str(), aggregate.ToString().c_str());
      std::exit(1);
    }
    if (wall > 0.0) {
      cell.frames_per_s = std::max(
          cell.frames_per_s, static_cast<double>(num_frames) / wall);
      cell.mb_per_s =
          std::max(cell.mb_per_s,
                   static_cast<double>(bytes) / (1024.0 * 1024.0) / wall);
    }
  }
  return cell;
}

struct ServeCell {
  uint64_t reports = 0;
  double reports_per_s = 0.0;
  double wall_s = 0.0;
};

// A full networked serving run: LBU session over the socket transport,
// the round's frames striped across `connections` loopback connections
// and the session pipelined at `depth` (1 = serial; >= 2 overlaps round
// t+1's transport with round t's estimation via the split transport).
ServeCell BenchServeOverSocket(uint64_t users, std::size_t timestamps,
                               std::size_t shards, std::size_t threads,
                               std::size_t connections, std::size_t depth) {
  const ClientFleet fleet(users, TruthValue, 99);
  RoundBuffer buffer;
  FrameDemux demux;
  demux.Register(kSessionId, &buffer);
  SocketListener listener(0, demux.Handler());
  std::vector<std::unique_ptr<SocketClient>> clients;
  std::vector<transport::FrameSender*> senders;
  for (std::size_t c = 0; c < connections; ++c) {
    clients.push_back(std::make_unique<SocketClient>(listener.port()));
    senders.push_back(clients.back().get());
  }

  MechanismConfig config;
  config.epsilon = kEpsilon;
  config.window = 8;
  config.fo = "GRR";
  config.seed = 17;
  SessionOptions options;
  options.num_shards = shards;
  options.num_threads = threads;
  options.pipeline_depth = depth;

  auto announce = [&](const RoundRequest& request) {
    SendRoundFrames(senders, kSessionId, request.round_index,
                    fleet.ProduceRound(request, threads));
  };
  // The split transport gives pipeline_depth >= 2 its real overlap; at
  // depth 1 it degrades to the plain buffered transport's behavior.
  MechanismSession session(
      CreateMechanism("LBU", config, users), kDomain, options,
      transport::MakeBufferedSplitTransport(buffer, announce, threads));

  ServeCell cell;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < timestamps; ++t) session.Advance();
  cell.wall_s = Seconds(start);
  cell.reports = session.stats().accepted;
  if (cell.wall_s > 0.0) {
    cell.reports_per_s = static_cast<double>(cell.reports) / cell.wall_s;
  }
  for (auto& client : clients) client->Close();
  listener.Stop();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (HandleHelp(flags,
                 "bench_transport — network transport subsystem: frame "
                 "codec, socket loopback and end-to-end networked "
                 "serving rates")) {
    return 0;
  }
  const double scale = BenchScale(flags);
  const std::size_t threads = BenchThreads(flags);
  const int reps = RepsFlag(flags, 3);
  const std::string csv_path = flags.GetString("csv", "");
  const int64_t connections_flag = flags.GetInt("connections", 4);
  if (connections_flag < 1) {
    std::fprintf(stderr, "error: --connections must be >= 1, got %lld\n",
                 static_cast<long long>(connections_flag));
    return 2;
  }
  const std::size_t max_connections =
      static_cast<std::size_t>(connections_flag);
  const int64_t depth_flag = flags.GetInt("depth", 2);
  if (depth_flag < 1) {
    std::fprintf(stderr, "error: --depth must be >= 1, got %lld\n",
                 static_cast<long long>(depth_flag));
    return 2;
  }
  const std::size_t max_depth = static_cast<std::size_t>(depth_flag);

  PrintHeader("Transport throughput", scale);

  // --- section 1: frame codec ---
  const std::size_t codec_frames = ScaledUsers(scale, 400000);
  const CodecCell codec = BenchCodec(codec_frames, reps);
  const double frame_bytes =
      codec.frames > 0
          ? static_cast<double>(codec.bytes) / static_cast<double>(codec.frames)
          : 0.0;
  std::printf("frame codec (%llu frames, %.0f B/frame):\n",
              static_cast<unsigned long long>(codec.frames), frame_bytes);
  std::printf("  encode: %12.0f frames/s  (%7.1f MB/s)\n",
              codec.encode_frames_per_s,
              codec.encode_frames_per_s * frame_bytes / (1024.0 * 1024.0));
  std::printf("  decode: %12.0f frames/s  (%7.1f MB/s)\n",
              codec.decode_frames_per_s,
              codec.decode_frames_per_s * frame_bytes / (1024.0 * 1024.0));

  // --- section 2: socket loopback, swept over connection counts ---
  const std::size_t socket_frames = ScaledUsers(scale, 200000);
  std::vector<std::size_t> sweep;
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    if (k <= max_connections) sweep.push_back(k);
  }
  std::vector<SocketCell> socket_cells;
  std::printf(
      "\nsocket loopback (%llu frames through 127.0.0.1, round-buffered):\n",
      static_cast<unsigned long long>(socket_frames));
  for (const std::size_t k : sweep) {
    socket_cells.push_back(BenchSocketLoopback(socket_frames, reps, k));
    std::printf("  deliver (%zu conn): %12.0f frames/s  (%7.1f MB/s)\n", k,
                socket_cells.back().frames_per_s,
                socket_cells.back().mb_per_s);
  }
  const SocketCell& socket_cell = socket_cells.front();

  // --- section 3: end-to-end networked serving, connections x depth ---
  // The full K x pipeline-depth sizing matrix (ROADMAP multi-connection
  // scaling item). Caveat: on a 1-core host every cell shares that core,
  // so the matrix measures striping/pipelining *overhead*, not scaling —
  // per-connection readers and depth-2 overlap only pay off with cores
  // to run on. Re-record on a multi-core host for the sizing answer.
  const uint64_t users = std::max<uint64_t>(400, ScaledUsers(scale, 50000));
  const std::size_t timestamps =
      std::max<std::size_t>(8, ScaledLength(scale, 64));
  std::vector<std::size_t> depth_sweep;
  for (const std::size_t d : {std::size_t{1}, std::size_t{2}}) {
    if (d <= max_depth) depth_sweep.push_back(d);
  }
  std::printf(
      "\nend-to-end over socket: LBU x %zu timestamps, %llu users/round, "
      "adaptive shards\n"
      "(1-core caveat: cells below measure striping/pipelining overhead, "
      "not multi-core scaling)\n",
      timestamps, static_cast<unsigned long long>(users));
  std::vector<std::vector<ServeCell>> serve_cells;  // [conn][depth]
  for (const std::size_t k : sweep) {
    serve_cells.emplace_back();
    for (const std::size_t d : depth_sweep) {
      serve_cells.back().push_back(
          BenchServeOverSocket(users, timestamps, /*shards=*/0, threads, k,
                               d));
      std::printf("  %zu conn, depth %zu: %llu reports (%12.0f reports/s)\n",
                  k, d,
                  static_cast<unsigned long long>(
                      serve_cells.back().back().reports),
                  serve_cells.back().back().reports_per_s);
    }
  }
  const ServeCell& serve = serve_cells.front().front();

  if (!csv_path.empty()) {
    CsvWriter csv(csv_path, {"section", "items", "items_per_s"});
    csv.WriteRow("codec_encode",
                 {static_cast<double>(codec.frames),
                  codec.encode_frames_per_s});
    csv.WriteRow("codec_decode",
                 {static_cast<double>(codec.frames),
                  codec.decode_frames_per_s});
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      csv.WriteRow("socket_deliver_c" + std::to_string(sweep[i]),
                   {static_cast<double>(socket_cells[i].frames),
                    socket_cells[i].frames_per_s});
    }
    csv.WriteRow("serve_reports",
                 {static_cast<double>(serve.reports), serve.reports_per_s});
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      for (std::size_t j = 0; j < depth_sweep.size(); ++j) {
        csv.WriteRow("serve_reports_c" + std::to_string(sweep[i]) + "_d" +
                         std::to_string(depth_sweep[j]),
                     {static_cast<double>(serve_cells[i][j].reports),
                      serve_cells[i][j].reports_per_s});
      }
    }
  }

  std::string per_connection;
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    char key[64];
    std::snprintf(key, sizeof(key), " socket_frames_per_s_c%zu=%.0f",
                  sweep[i], socket_cells[i].frames_per_s);
    per_connection += key;
  }
  // The serving matrix: one key per (connections, depth) cell.
  std::string per_cell;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    for (std::size_t j = 0; j < depth_sweep.size(); ++j) {
      char key[64];
      std::snprintf(key, sizeof(key), " serve_reports_per_s_c%zu_d%zu=%.0f",
                    sweep[i], depth_sweep[j],
                    serve_cells[i][j].reports_per_s);
      per_cell += key;
    }
  }
  std::printf(
      "\n[throughput] threads=%zu connections=%zu depth=%zu frames=%llu "
      "frames_per_s=%.0f socket_frames_per_s=%.0f%s reports_per_s=%.0f%s "
      "wall_s=%.3f\n",
      threads, max_connections, max_depth,
      static_cast<unsigned long long>(codec.frames),
      codec.decode_frames_per_s, socket_cell.frames_per_s,
      per_connection.c_str(), serve.reports_per_s, per_cell.c_str(),
      serve.wall_s);
  return 0;
}
